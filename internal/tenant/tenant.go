// Package tenant is the multi-tenant worker pool: several core.Programs
// run concurrently on one set of worker goroutines, so one job's rundown
// is filled by another job's work. The paper's introduction dismisses this
// "batch" environment because statically splitting a machine between job
// streams lengthens each job's elapsed time (E9 reproduces the trade-off);
// the pool avoids the static split. Its dispatch policy is overlap-first:
//
//   - every worker has a home job (weighted share of the workers per job)
//     and serves it exclusively while the home job has anything
//     dispatchable — phase overlap inside the job keeps its makespan as
//     short as running alone;
//   - only when the home job is in rundown (nothing dispatchable even
//     after absorbing deferred management) does the worker take foreign
//     work, chosen by priority and then deficit-round-robin credit, so
//     backfill capacity is shared fairly among the other jobs.
//
// Each job owns its own core.Scheduler state machine wrapped in its own
// executive Manager (serial and sharded both supported, via the
// executive.PoolDriver surface); the pool owns cross-job dispatch,
// parking, stall detection, and lifecycle. Layering: pool above manager
// above state machine.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// drrQuantum is the deficit-round-robin credit (in granules) one weight
// unit earns per replenishment round. Backfill tasks draw down the
// serving job's credit by their granule count, so over time each job's
// share of the pool's spare capacity is proportional to its weight.
const drrQuantum = 64

// Config parameterizes a pool.
type Config struct {
	// Workers is the number of shared worker goroutines (>= 1).
	Workers int
	// Manager selects the per-job management layer (SerialManager
	// default). Every job in the pool uses the same kind. An async pool
	// runs one management goroutine per job beside the shared workers.
	Manager executive.ManagerKind
	// DequeCap and Batch parameterize the sharded manager per job (see
	// executive.Config); ignored by the serial manager.
	DequeCap int
	// Batch is the sharded manager's completion batch size (also the
	// async manager's completion drain chunk).
	Batch int
	// ReadyCap and LowWater parameterize the async manager per job (see
	// executive.Config); ignored by the other managers.
	ReadyCap int
	// LowWater is the async manager's deferred-overlap low-water mark.
	LowWater int
	// Observer, when non-nil, receives periodic pool-level Snapshots
	// sampled on a dedicated goroutine for the pool's lifetime, plus one
	// Final snapshot from Close. The callback must not block for long.
	Observer func(Snapshot)
	// ObservePeriod is the sampling period; <= 0 selects 10ms. Ignored
	// without Observer.
	ObservePeriod time.Duration
	// Trace, when non-nil, flight-records the pool's scheduling decisions:
	// per-task dispatch/completion (with the owning job's index and a
	// backfill marker), pool-level park/unpark, and per-job start/finish/
	// abort. Recording happens at pool level — the layer that knows which
	// job a task belongs to — into per-worker rings with no
	// synchronization; merge with Recorder.Take after Close.
	Trace *trace.Recorder
	// MaxActive is the admission high-water mark: at most this many jobs
	// run concurrently (0 = unlimited). A Submit above the mark fails with
	// ErrPoolSaturated, or queues when Queue is set; queued jobs activate
	// in submit order as active jobs finish.
	MaxActive int
	// Queue makes a saturated Submit enqueue the job instead of rejecting
	// it. Ignored without MaxActive.
	Queue bool
	// Admit, when non-nil, is consulted by Submit before the MaxActive
	// check, under the pool lock, with a consistent view of the pool's
	// load. A non-nil return rejects the job: Submit wraps the error with
	// the job name, so a caller-defined sentinel (or errors.As target)
	// survives to the submitter. The predicate must be fast and must not
	// call back into the pool.
	Admit AdmitFunc
	// DynamicFaults pre-arms an empty fault plan (and the stall watchdog)
	// so rules can be injected into the live pool via InjectFaults — the
	// staging path for a service daemon, where a fault campaign arrives
	// with a job submitted to an already-running pool. Ignored when Faults
	// already arms a plan.
	DynamicFaults bool
	// PreemptBound caps every job's task grain at this many granules: the
	// largest non-preemptible unit any worker can hold, bounding how long
	// a job emerging from rundown waits behind an in-flight foreign grain
	// (0 = no cap). Report.MaxBackfillTask measures the enforcement.
	PreemptBound int
	// StallTimeout arms the pool watchdog: a job with tasks in flight and
	// no dispatch or completion for this long is failed as wedged (and
	// retried if it has retries left), and each watchdog tick re-wakes
	// parked workers — the recovery path for a dropped wakeup. 0 selects a
	// default when Faults is set and disables the watchdog otherwise;
	// negative always disables it.
	StallTimeout time.Duration
	// Faults, when non-nil, arms deterministic fault injection: the same
	// Spec the simulator prices in virtual time strikes the pool's real
	// goroutines at the matching chokepoints (Rule.After is wall-clock
	// nanoseconds since pool start; delays are bounded by fault.Sleep).
	Faults *fault.Spec
	// Metrics, when non-nil, is the telemetry set the pool records into:
	// per-worker dispatch/completion/backfill counters, the queue-wait
	// and deadline-margin histograms, job lifecycle counters, and —
	// through the per-job managers — steal counters and ready-buffer
	// occupancy. All durations are wall-clock nanoseconds. The
	// metrics-off fast path is one nil check per event.
	Metrics *telemetry.Set
}

// JobConfig describes one submitted job.
type JobConfig struct {
	// Name labels the job in reports and errors ("jobN" default).
	Name string
	// Priority orders backfill: spare capacity goes to dispatchable jobs
	// of the highest priority first. Higher is more important; equal
	// priorities share by deficit-round-robin.
	Priority int
	// Weight is the job's share of home workers and of backfill credit
	// within its priority class (<= 0 selects 1).
	Weight int
	// Deadline bounds the job's submit-to-finish wall time (0 = none). A
	// job past its deadline is aborted — only that job — with an error
	// wrapping context.DeadlineExceeded; queue wait under admission
	// control counts against it. Deadline aborts never retry.
	Deadline time.Duration
	// Retry is how many times a failed attempt (work error, panic, wedge)
	// restarts on a fresh scheduler before the error sticks (0 = none).
	Retry int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it, capped at 64× (0 = retry immediately).
	Backoff time.Duration
	// Class is the job's service class label ("" = unclassified). The pool
	// attaches no semantics beyond exposing it to Config.Admit and
	// recording per-class submitted/rejected/done counters in the metric
	// set; the service layer defines classes like "latency" on top.
	Class string
	// Tolerance is the class-specific admission tolerance (for the
	// "latency" class, the projected slowdown budget in percent). Opaque
	// to the pool; carried to Config.Admit.
	Tolerance float64
}

// Pool is a shared worker pool running several jobs concurrently. Workers
// are spawned by NewPool and live until Close.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*Job // every submitted job, submit order
	active  []*Job // incomplete jobs, submit order
	waitq   []*Job // admitted-but-queued jobs (admission control), submit order
	homes   []*Job // per-worker home job; nil entries when no active jobs
	closed  bool
	stalled int // jobs failed by the pool stall detector
	// retryWait counts jobs between attempts (backoff timer pending).
	// Workers must not exit — and Close must not join them — while a
	// retry is outstanding, even with the active set empty.
	retryWait int

	// epoch bumps (under mu) whenever the active set changes, so workers
	// can cache their home job and re-read only on change.
	epoch atomic.Uint64
	// gen counts progress events (task acquired, completion submitted,
	// job submitted or finished). A worker parks only if gen is unchanged
	// since its dry sweep began; see park.
	gen atomic.Uint64
	// nWaiting counts workers inside cond.Wait. Modified only under mu,
	// read lock-free by progress to skip the broadcast when nobody waits.
	nWaiting atomic.Int32

	wg    sync.WaitGroup
	start time.Time
	end   time.Time // set by Close after the workers join

	sampler  *executive.Sampler // non-nil when an Observer samples the pool
	obsFinal atomic.Bool        // Final snapshot emitted (first Close wins)

	// plan is the compiled fault campaign (nil when Config.Faults is nil:
	// one nil check per task on the fault-free hot path).
	plan *fault.Plan
	// watchStop/watchDone bracket the watchdog goroutine; watchOn gates
	// fault kinds (dropped wakeups, unbounded wedges) that need the
	// watchdog to recover.
	watchStop chan struct{}
	watchDone chan struct{}
	watchOn   bool

	closeOnce sync.Once
	closeRep  *Report
	closeErr  error

	idleNS          atomic.Int64
	backfillTasks   atomic.Int64
	backfillCompute atomic.Int64
	retries         atomic.Int64
	maxBackfillTask atomic.Int64

	// met is Config.Metrics (nil = metrics off). metMu/mgmtSeen serialize
	// the management-time mirror between the sampler goroutine and Close
	// (see noteMgmt).
	met      *telemetry.Set
	metMu    sync.Mutex
	mgmtSeen int64
}

// NewPool starts cfg.Workers worker goroutines and returns the pool,
// ready for Submit. Close releases the workers.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("tenant: need at least 1 worker")
	}
	if _, err := executive.ParseManager(cfg.Manager.String()); err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	p := &Pool{
		cfg:   cfg,
		homes: make([]*Job, cfg.Workers),
		start: time.Now(),
		met:   cfg.Metrics,
	}
	p.cond = sync.NewCond(&p.mu)
	if rec := cfg.Trace; rec != nil {
		m := rec.Meta()
		if m.Backend == "" {
			m.Backend = "pool"
		}
		m.Manager = cfg.Manager.String()
		m.Workers = cfg.Workers
		m.TimeUnit = trace.UnitNanos
	}
	if cfg.Observer != nil {
		p.startObserver()
	}
	if cfg.Faults != nil {
		p.plan = fault.New(*cfg.Faults)
	}
	if p.plan == nil && cfg.DynamicFaults {
		p.plan = fault.NewDynamic(fault.Spec{})
	}
	timeout := cfg.StallTimeout
	if timeout == 0 && p.plan != nil {
		timeout = defaultStallTimeout
	}
	if timeout > 0 {
		p.watchOn = true
		p.watchStop = make(chan struct{})
		p.watchDone = make(chan struct{})
		go p.watchdog(timeout)
	}
	p.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			// The pprof label ties profile samples to the worker index the
			// metric shards and trace rings use; the worker adds a job
			// label per job switch when metrics are on.
			pprof.Do(context.Background(),
				pprof.Labels("rundown_worker", strconv.Itoa(w)),
				func(ctx context.Context) { p.worker(ctx, w) })
		}(w)
	}
	return p, nil
}

// Submit adds a job to the pool and activates it immediately — unless
// admission control is at its high-water mark, in which case the job is
// rejected (ErrPoolSaturated) or queued. opt.Workers defaults to the
// pool's worker count (it only informs the scheduler's grain and subset
// defaults); Config.PreemptBound caps the resulting task grain.
func (p *Pool) Submit(prog *core.Program, opt core.Options, jc JobConfig) (*Job, error) {
	if opt.Workers <= 0 {
		opt.Workers = p.cfg.Workers
	}
	opt = capTenantGrain(prog, opt, p.cfg.PreemptBound)
	sched, err := core.New(prog, opt)
	if err != nil {
		return nil, err
	}
	// Options.AdaptiveBatch is deliberately NOT threaded through here:
	// pool workers drive the non-blocking PoolDriver surface and park at
	// pool level, never on the manager's condition variable, so the
	// controller's hoarded-idle (shrink) signal would be structurally
	// zero — a grow-only controller is worse than fixed parameters.
	// Adaptive tenancy is a ROADMAP follow-on.
	mgr, err := executive.NewPoolDriver(sched, executive.Config{
		Workers: p.cfg.Workers, Manager: p.cfg.Manager,
		DequeCap: p.cfg.DequeCap, Batch: p.cfg.Batch,
		ReadyCap: p.cfg.ReadyCap, LowWater: p.cfg.LowWater,
		Metrics: p.cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	// Async managers make progress on their own management goroutine —
	// completions apply and refills land where no pool worker sees them —
	// so the pool registers its progress bump as the manager's notify
	// callback: parked workers wake and re-sweep when the job's
	// management goroutine produces work or finishes the job.
	if n, ok := mgr.(executive.Notifier); ok {
		n.SetNotify(p.progress)
	}
	if jc.Weight <= 0 {
		jc.Weight = 1
	}
	j := &Job{
		pool: p, cfg: jc, prog: prog, opt: opt, sched: sched,
		done: make(chan struct{}), submitted: time.Now(),
	}
	j.mgrv.Store(mgr)
	j.attempts.Store(1)
	j.retriesLeft = jc.Retry

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("tenant: submit %q: %w", jc.Name, ErrPoolClosed)
	}
	j.idx = len(p.jobs)
	if j.cfg.Name == "" {
		j.cfg.Name = fmt.Sprintf("job%d", j.idx)
	}
	if p.cfg.Admit != nil {
		if err := p.cfg.Admit(j.cfg, p.admissionViewLocked()); err != nil {
			p.mu.Unlock()
			p.classInc(j.cfg.Class, classRejected)
			return nil, fmt.Errorf("tenant: submit %q: %w", j.cfg.Name, err)
		}
	}
	if p.cfg.MaxActive > 0 && len(p.active) >= p.cfg.MaxActive && !p.cfg.Queue {
		p.mu.Unlock()
		p.classInc(j.cfg.Class, classRejected)
		return nil, fmt.Errorf("tenant: submit %q: %d jobs active: %w",
			j.cfg.Name, p.cfg.MaxActive, ErrPoolSaturated)
	}
	if rec := p.cfg.Trace; rec != nil {
		// Job names accumulate in submit order, matching the Job column of
		// the records (mutated under p.mu, read only after Close).
		rec.Meta().Jobs = append(rec.Meta().Jobs, j.cfg.Name)
	}
	p.jobs = append(p.jobs, j)
	if p.cfg.MaxActive > 0 && len(p.active) >= p.cfg.MaxActive {
		// Admitted but queued: the manager starts when a slot frees.
		p.waitq = append(p.waitq, j)
	} else {
		p.activateLocked(j)
	}
	// The deadline clock starts at Submit — queue wait under admission
	// control counts against it.
	if d := jc.Deadline; d > 0 {
		j.deadline = time.AfterFunc(d, func() { p.deadlineFire(j) })
	}
	p.mu.Unlock()

	if p.met != nil {
		p.met.JobsSubmitted.Inc(0)
	}
	p.classInc(jc.Class, classSubmitted)
	p.progress()
	return j, nil
}

// activateLocked starts job j's manager and puts it in the active set.
// Caller holds p.mu.
func (p *Pool) activateLocked(j *Job) {
	if rec := p.cfg.Trace; rec != nil {
		rec.Emit(trace.KStart, rec.Now(), -1, int32(j.idx), -1, 0, 0, 0)
	}
	if !j.activatedOnce {
		// First activation (a retry reactivates but never re-queues): the
		// submit-to-start gap is the admission-control queue wait.
		j.activatedOnce = true
		j.started.Store(true)
		j.queueWaitNS = int64(time.Since(j.submitted))
		if p.met != nil {
			p.met.QueueWait.Observe(j.queueWaitNS)
		}
	}
	j.driver().Start()
	j.lastTouch.Store(time.Now().UnixNano())
	p.active = append(p.active, j)
	if p.met != nil {
		p.met.ActiveJobs.Set(int64(len(p.active)))
	}
	p.rebalanceLocked()
}

// Close marks the pool as accepting no more jobs, lets every submitted
// job run to completion (including queued jobs and pending retries),
// joins the workers, and returns the pool report. The error is the first
// job error in submit order, if any. Close is idempotent and safe to
// call concurrently with Submit and Abort: every call returns the same
// report and error.
func (p *Pool) Close() (*Report, error) {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		// Release every injected wedge: captive workers submit their
		// withheld completions (dropped if their attempt was already
		// failed) and rejoin the loop, so teardown never hangs on a fault.
		p.plan.ReleaseAll()
		p.wg.Wait()
		p.stopWatchdog()
		p.end = time.Now()

		for _, j := range p.jobs {
			if j.err != nil {
				p.closeErr = fmt.Errorf("tenant: job %q: %w", j.cfg.Name, j.err)
				break
			}
		}
		p.closeRep = p.report()
		p.noteMgmt(int64(p.closeRep.Mgmt))
		p.stopObserver(p.closeRep)
	})
	return p.closeRep, p.closeErr
}

// Abort fails every active job with err (finished jobs keep their
// results), releasing their workers and waiters; the pool itself
// survives and Close still returns normally. It is the pool's
// cancellation point: a caller whose context fires aborts the pool with
// an error wrapping ctx.Err(), and every outstanding Job.Wait returns
// that error.
func (p *Pool) Abort(err error) {
	p.mu.Lock()
	jobs := append([]*Job(nil), p.active...)
	// Queued and backing-off jobs have no running manager to abort; they
	// retire directly. An abort is final — pending retries are cancelled
	// (their backoff timers fire into a finished job and stand down).
	for _, j := range p.jobs {
		if j.retrying.Load() && !j.finished.Load() {
			p.finishJobLocked(j, err)
		}
	}
	for len(p.waitq) > 0 {
		j := p.waitq[0]
		p.waitq = p.waitq[1:]
		p.finishJobLocked(j, err)
	}
	p.mu.Unlock()
	// Manager aborts happen outside p.mu: each takes its own manager
	// lock, and the async manager's notify path re-enters the pool.
	for _, j := range jobs {
		// A manager whose state machine already completed refuses the
		// abort under its own lock (no check-then-act window here): the
		// job executed fully — perhaps retired by no worker sweep yet —
		// and keeps its results instead of being poisoned with the abort
		// error. The refusal reads back as Err() == nil.
		m := j.driver()
		m.Abort(err)
		if merr := m.Err(); merr == nil {
			p.checkFinished(j)
		} else {
			p.failJob(j, m, merr, false)
		}
	}
	p.progress()
}

// worker is the shared goroutine body: serve the home job while it has
// work, backfill foreign jobs during the home job's rundown, park when
// nothing is dispatchable anywhere. ctx carries the goroutine's pprof
// worker label; a job label is layered on per job switch when metrics
// are on.
func (p *Pool) worker(ctx context.Context, w int) {
	defer p.wg.Done()
	var cache homeCache
	var labeled *Job // job currently named in this goroutine's pprof labels
	// The previous task's job AND the driver it was taken from: after a
	// retry swaps a fresh manager into the job, this worker's batched
	// completions still belong to the old (aborted) attempt and must be
	// flushed there, where the post-failure gate drops them.
	var last *Job
	var lastMgr executive.PoolDriver
	for {
		g0 := p.gen.Load()
		j, m, task, backfill, ok := p.sweep(w, &cache)
		if ok {
			if p.met != nil && j != labeled {
				pprof.SetGoroutineLabels(pprof.WithLabels(ctx,
					pprof.Labels("rundown_job", j.cfg.Name)))
				labeled = j
			}
			if lastMgr != nil && lastMgr != m {
				// The previous job's completions must not linger in this
				// worker's batch while it works elsewhere: a job's final
				// completions would otherwise wait for this worker's next
				// dry sweep, stretching that job's observed makespan.
				if lastMgr.Flush(w) {
					p.checkFinished(last)
					p.progress()
				}
			}
			last, lastMgr = j, m
			p.runTask(w, j, m, task, backfill)
			continue
		}
		// Dry sweep: every active job's TryNext flushed this worker's
		// batch and found nothing dispatchable.
		last, lastMgr = nil, nil
		if p.park(w, g0) {
			return
		}
	}
}

// runTask executes task for job j outside every lock, then submits the
// completion to m — the driver the task was taken from, which after a
// retry may no longer be j's current one (the stale completion is then
// dropped at the aborted manager's gate). Panics in user work fail the
// job, not the pool; a failed attempt with retries left restarts.
func (p *Pool) runTask(w int, j *Job, m executive.PoolDriver, task core.Task, backfill bool) {
	j.lastTouch.Store(time.Now().UnixNano())
	if p.met != nil {
		p.met.Dispatches.Inc(w)
	}
	var ring *trace.Ring
	if rec := p.cfg.Trace; rec != nil {
		ring = rec.Ring(w)
		ring.Record(trace.KDispatch, rec.Now(), int32(w), int32(j.idx),
			int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), 0)
		if backfill {
			ring.Record(trace.KBackfill, rec.Now(), int32(w), int32(j.idx),
				int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), 0)
		}
	}
	work := j.prog.Phases[task.Phase].Work
	var tf taskFaults
	if p.plan != nil {
		p.injectTask(w, j, task, &work, &tf)
	}
	c0 := time.Now()
	err := tf.err
	if err == nil {
		err = execTask(work, task)
		if err == nil && tf.factor > 1 {
			stretchCompute(time.Since(c0), tf.factor)
		}
	}
	dur := time.Since(c0)

	if err != nil {
		m.Abort(err)
		p.failJob(j, m, err, true)
		return
	}
	j.compute.Add(int64(dur))
	j.tasks.Add(1)
	if p.met != nil {
		p.met.ComputeTime.Add(w, int64(dur))
		p.met.Completions.Inc(w)
	}
	if backfill {
		j.backfillTasks.Add(1)
		j.backfillCompute.Add(int64(dur))
		p.backfillTasks.Add(1)
		p.backfillCompute.Add(int64(dur))
		if p.met != nil {
			p.met.Backfill.Inc(w)
			p.met.BackfillTime.Add(w, int64(dur))
		}
		n := int64(task.Run.Len())
		for {
			cur := p.maxBackfillTask.Load()
			if n <= cur || p.maxBackfillTask.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	if p.plan != nil {
		p.holdCompletion(w, j, &tf)
	}
	// Recorded BEFORE the completion is submitted to management, so any
	// dispatch it enables carries a larger Seq (the causal edge replay
	// and diff rely on).
	if ring != nil {
		ring.Record(trace.KComplete, p.cfg.Trace.Now(), int32(w), int32(j.idx),
			int32(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), int64(dur))
	}
	j.lastTouch.Store(time.Now().UnixNano())
	// A completion that only joined the worker's local batch cannot have
	// released successor work or finished the job, so parked workers are
	// only woken when the batch was actually applied — without this,
	// every batched completion would broadcast the pool awake during
	// rundown, defeating the point of completion batching.
	if m.Complete(w, task) {
		p.checkFinished(j)
		p.progress()
	}
}

// execTask runs the work function over the task's granules. A nil work
// function is a pure scheduling run.
func execTask(work core.WorkFn, task core.Task) (err error) {
	if work == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tenant: work panicked in %v: %v", task, r)
		}
	}()
	task.Run.Each(func(g granule.ID) { work(g) })
	return nil
}

// progress records a progress event and wakes parked workers. The
// broadcast is skipped lock-free when nobody waits, so the hot path costs
// one atomic add and one atomic load per task.
func (p *Pool) progress() {
	p.gen.Add(1)
	if p.nWaiting.Load() > 0 {
		// An injected dropped wakeup suppresses exactly this broadcast;
		// the watchdog's periodic re-wake is the recovery path, so the
		// fault is only consumed while the watchdog is armed.
		if p.plan != nil && p.watchOn && p.plan.DropWakeup() {
			if rec := p.cfg.Trace; rec != nil {
				rec.Emit(trace.KFault, rec.Now(), -1, -1, -1, 0, 0, int64(fault.DropWakeup))
			}
			return
		}
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// park parks worker w until progress, unless progress already happened
// since the worker's dry sweep began (gen != g0). It returns true when
// the worker should exit: the pool is closed and every job has finished.
//
// Ordering: nWaiting is published before gen is re-checked, and progress
// bumps gen before reading nWaiting — so either the parker sees the new
// gen and retries, or the producer sees the waiter and broadcasts. The
// broadcast serializes behind mu, which the parker holds until cond.Wait
// releases it, so the wakeup cannot be lost.
func (p *Pool) park(w int, g0 uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed && len(p.active) == 0 && len(p.waitq) == 0 && p.retryWait == 0 {
		p.cond.Broadcast()
		return true
	}
	p.nWaiting.Add(1)
	if p.gen.Load() != g0 {
		p.nWaiting.Add(-1)
		return false
	}
	if int(p.nWaiting.Load()) == p.cfg.Workers && len(p.active) > 0 {
		// Every worker swept every active job dry at a stable gen: all
		// deques are empty and every completion batch was flushed, so an
		// unfinished job with nothing in flight can never make progress —
		// a true stall. Fail those jobs; the pool itself survives.
		for _, j := range append([]*Job(nil), p.active...) {
			m := j.driver()
			if m.InFlight() == 0 {
				err := fmt.Errorf("tenant: job %q stalled at phase %d: all pool workers idle, nothing in flight",
					j.cfg.Name, j.sched.CurrentPhase())
				m.Abort(err)
				if merr := m.Err(); merr == nil {
					// The manager refused the abort: the job's final
					// completion landed (async drain) between the dry
					// sweep and this probe — it finished, it did not
					// stall. Retire it with its results.
					p.finishJobLocked(j, nil)
				} else {
					p.finishJobLocked(j, merr)
					p.stalled++
				}
			}
		}
		p.nWaiting.Add(-1)
		p.cond.Broadcast()
		return false
	}
	i0 := time.Now()
	if rec := p.cfg.Trace; rec != nil {
		rec.Ring(w).Record(trace.KPark, rec.Now(), int32(w), -1, -1, 0, 0, 0)
	}
	p.cond.Wait()
	p.nWaiting.Add(-1)
	d := time.Since(i0)
	p.idleNS.Add(int64(d))
	if p.met != nil {
		p.met.IdleTime.Add(w, int64(d))
	}
	if rec := p.cfg.Trace; rec != nil {
		rec.Ring(w).Record(trace.KUnpark, rec.Now(), int32(w), -1, -1, 0, 0, int64(d))
	}
	return false
}

// checkFinished retires j when its state machine has completed or its
// manager recorded an error (completion-processing panic, abort). A job
// between attempts is left alone: its current driver is the dead
// attempt's, and the retry owns its fate.
func (p *Pool) checkFinished(j *Job) {
	if j.finished.Load() || j.retrying.Load() {
		return
	}
	m := j.driver()
	err := m.Err()
	if err == nil && !m.Done() {
		return
	}
	p.mu.Lock()
	if j.retrying.Load() {
		p.mu.Unlock()
		return
	}
	p.finishJobLocked(j, err)
	p.mu.Unlock()
}

// finishJobLocked retires j exactly once: records the end time and error,
// removes it from the active set, rebalances homes, and releases waiters.
// Caller holds p.mu.
func (p *Pool) finishJobLocked(j *Job, err error) {
	if j.finished.Load() {
		return
	}
	j.finished.Store(true)
	j.end = time.Now()
	j.err = err
	if j.deadline != nil {
		j.deadline.Stop()
	}
	if rec := p.cfg.Trace; rec != nil {
		k := trace.KFinish
		if err != nil {
			k = trace.KAbort
		}
		rec.Emit(k, rec.Now(), -1, int32(j.idx), -1, 0, 0, 0)
	}
	for i, a := range p.active {
		if a == j {
			p.active = append(p.active[:i], p.active[i+1:]...)
			break
		}
	}
	// The freed slot admits queued jobs in submit order.
	for len(p.waitq) > 0 && (p.cfg.MaxActive <= 0 || len(p.active) < p.cfg.MaxActive) {
		next := p.waitq[0]
		p.waitq = p.waitq[1:]
		p.activateLocked(next)
	}
	if !j.activatedOnce {
		// Retired while still queued (deadline, pool abort): the whole
		// life was queue wait.
		j.queueWaitNS = int64(j.end.Sub(j.submitted))
	}
	if p.met != nil {
		p.met.JobsDone.Inc(0)
		p.met.ActiveJobs.Set(int64(len(p.active)))
		if errors.Is(err, context.DeadlineExceeded) {
			p.met.DeadlineMisses.Inc(0)
		} else if err == nil && j.cfg.Deadline > 0 {
			p.met.DeadlineMargin.Observe(int64(j.cfg.Deadline - j.end.Sub(j.submitted)))
		}
		if j.cfg.Class != "" {
			p.met.Class(j.cfg.Class).Done.Inc(0)
		}
	}
	p.rebalanceLocked()
	close(j.done)
	p.gen.Add(1)
	p.cond.Broadcast()
}
