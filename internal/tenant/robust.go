package tenant

// Production-grade tenancy: this file holds the pool's failure-handling
// machinery — per-job deadlines, per-job retry with capped exponential
// backoff, admission control, the wedge watchdog, and the deterministic
// fault-injection hooks that let all of it be exercised on demand.
//
// The attempt model mirrors the simulator's: a job's current scheduler
// and manager belong to its current ATTEMPT. When an attempt dies
// (injected error, work panic, wedge) the old manager is aborted first —
// so every in-flight completion of the dead attempt is dropped at the
// manager's own post-failure gate — and, when retries remain, a fresh
// scheduler+manager pair is swapped in after the backoff. Workers carry
// the (job, driver) pair they took a task from, so a stale worker can
// never submit old-attempt state into a new attempt: its captured driver
// is the aborted one.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/trace"
)

// ErrPoolClosed is the sentinel wrapped by Submit on a closed pool
// (test with errors.Is).
var ErrPoolClosed = errors.New("tenant: pool is closed")

// ErrPoolSaturated is the sentinel wrapped by Submit when admission
// control rejects a job: MaxActive jobs are already active and the pool
// was not configured to queue (test with errors.Is).
var ErrPoolSaturated = errors.New("tenant: pool saturated")

// defaultStallTimeout is the watchdog threshold selected when a fault
// campaign is configured without an explicit StallTimeout: injected
// wedges must be detectable or they would hang the suite.
const defaultStallTimeout = 250 * time.Millisecond

// backoffDur is the capped exponential retry backoff: the first retry
// waits base, each further retry doubles it, capped at 64× base.
func backoffDur(base time.Duration, attempts int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempts - 2 // attempts counts from 1; the first retry is attempt 2
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return base << shift
}

// capTenantGrain applies Config.PreemptBound to a job's options: the
// task grain — the largest non-preemptible unit a worker can hold, and
// therefore the longest a home job emerging from rundown can wait behind
// an in-flight foreign grain — is capped at bound granules. When Grain
// is unset the core default is materialized first so the cap composes
// with it.
func capTenantGrain(prog *core.Program, opt core.Options, bound int) core.Options {
	if bound <= 0 {
		return opt
	}
	if opt.Grain <= 0 {
		maxG := 1
		for _, ph := range prog.Phases {
			if ph.Granules > maxG {
				maxG = ph.Granules
			}
		}
		w := opt.Workers
		if w <= 0 {
			w = 1
		}
		opt.Grain = (maxG + 2*w - 1) / (2 * w)
		if opt.Grain < 1 {
			opt.Grain = 1
		}
	}
	if opt.Grain > bound {
		opt.Grain = bound
	}
	return opt
}

// ---- fault injection ----

// taskFaults carries one dispatch's injected effects from the
// pre-execute consultation to the post-execute application.
type taskFaults struct {
	factor int64 // compute stretch (GrainSlow × WorkerSlow product)
	stall  int64 // completion withhold in units (GrainStall)
	wedge  bool  // completion withheld until Plan release (WorkerWedge)
	err    error // injected failure (GrainError)
}

// noteFault flight-records and counts one injected fault firing against
// job ji.
func (p *Pool) noteFault(w, ji int, k fault.Kind) {
	if rec := p.cfg.Trace; rec != nil {
		rec.Ring(w).Record(trace.KFault, rec.Now(), int32(w), int32(ji), -1, 0, 0, int64(k))
	}
	if p.met != nil {
		p.met.Faults.Inc(w)
	}
}

// injectTask consults the plan for worker- and grain-level faults on one
// dispatch, possibly replacing work with a panicking body (GrainPanic).
// On the pool a WorkerWedge blocks the completion until the Plan is
// released (Close calls ReleaseAll), so only the watchdog or a deadline
// can fail the wedged job — the injected hang the stall machinery exists
// to detect. Only called with a non-nil plan.
func (p *Pool) injectTask(w int, j *Job, task core.Task, work *core.WorkFn, tf *taskFaults) {
	at := time.Since(p.start).Nanoseconds()
	tf.factor = 1
	if _, f, ok := p.plan.Worker(w, at, fault.WorkerSlow); ok {
		p.noteFault(w, j.idx, fault.WorkerSlow)
		tf.factor *= f
	}
	if _, _, ok := p.plan.Worker(w, at, fault.WorkerWedge); ok {
		p.noteFault(w, j.idx, fault.WorkerWedge)
		tf.wedge = true
	}
	k, d, f := p.plan.Grain(j.idx, int(task.Phase), uint32(task.Run.Lo), uint32(task.Run.Hi), at)
	if k == 0 {
		return
	}
	p.noteFault(w, j.idx, k)
	switch k {
	case fault.GrainSlow:
		tf.factor *= f
	case fault.GrainStall:
		tf.stall += d
	case fault.GrainPanic:
		ph := task.Phase
		*work = func(granule.ID) {
			panic(fmt.Sprintf("fault: injected panic in phase %d", ph))
		}
	case fault.GrainError:
		tf.err = fmt.Errorf("tenant: injected error in job %q phase %d granules [%d,%d)",
			j.cfg.Name, task.Phase, task.Run.Lo, task.Run.Hi)
	}
}

// stretchCompute sleeps the slow-fault extension of a task that just ran
// for dur — inside the worker's compute-measurement window, so a slow
// grain or worker shows up as inflated compute exactly as in virtual
// time.
func stretchCompute(dur time.Duration, factor int64) {
	if factor > 1 {
		fault.Sleep(int64(dur) * (factor - 1) / int64(time.Microsecond))
	}
}

// holdCompletion applies the completion-side faults after the task ran:
// the stuck-grain withhold, the wedge (blocking on the Plan's release
// channel), and the management-submission delay. Only called with a
// non-nil plan.
func (p *Pool) holdCompletion(w int, j *Job, tf *taskFaults) {
	if tf.stall > 0 {
		fault.Sleep(tf.stall)
	}
	if tf.wedge {
		<-p.plan.Release()
	}
	if d, ok := p.plan.Mgmt(j.idx, time.Since(p.start).Nanoseconds()); ok {
		p.noteFault(w, j.idx, fault.MgmtDelay)
		fault.Sleep(d)
	}
}

// ---- failure handling: retry, deadline, watchdog ----

// failJob handles the failure of job j's attempt owned by driver m
// (which the caller has already aborted, outside p.mu). A retryable,
// non-deadline failure with retries left restarts the job on a fresh
// scheduler after its capped exponential backoff; otherwise the job
// retires with err. A stale call — m is no longer j's current driver —
// is dropped: the attempt it belonged to already died.
func (p *Pool) failJob(j *Job, m executive.PoolDriver, err error, retryable bool) {
	p.mu.Lock()
	if j.finished.Load() || (m != nil && j.driver() != m) {
		p.mu.Unlock()
		return
	}
	if !retryable || j.retriesLeft <= 0 || errors.Is(err, context.DeadlineExceeded) {
		p.finishJobLocked(j, err)
		p.mu.Unlock()
		p.progress()
		return
	}
	j.retriesLeft--
	attempt := int(j.attempts.Add(1))
	p.retries.Add(1)
	if p.met != nil {
		p.met.Retries.Inc(0)
	}
	p.retryWait++
	j.retrying.Store(true)
	// Fold the dead attempt's management time into the job's total before
	// the driver is replaced.
	j.mgmtPrior.Add(int64(m.Mgmt()))
	// Out of the active set while backing off: no worker sweeps it, no
	// home workers are parked on it.
	for i, a := range p.active {
		if a == j {
			p.active = append(p.active[:i], p.active[i+1:]...)
			if p.met != nil {
				p.met.ActiveJobs.Set(int64(len(p.active)))
			}
			p.rebalanceLocked()
			break
		}
	}
	if rec := p.cfg.Trace; rec != nil {
		rec.Emit(trace.KRetry, rec.Now(), -1, int32(j.idx), -1, 0, 0, int64(attempt))
	}
	p.mu.Unlock()
	time.AfterFunc(backoffDur(j.cfg.Backoff, attempt), func() { p.reactivate(j) })
	p.progress()
}

// reactivate restarts job j on a fresh scheduler+manager pair after its
// retry backoff. A job retired in the meantime (deadline, Abort, Close
// teardown) is left retired — the retry slot is simply returned.
func (p *Pool) reactivate(j *Job) {
	var mgr executive.PoolDriver
	if !j.finished.Load() {
		sched, err := core.New(j.prog, j.opt)
		if err == nil {
			mgr, err = executive.NewPoolDriver(sched, executive.Config{
				Workers: p.cfg.Workers, Manager: p.cfg.Manager,
				DequeCap: p.cfg.DequeCap, Batch: p.cfg.Batch,
				ReadyCap: p.cfg.ReadyCap, LowWater: p.cfg.LowWater,
				Metrics: p.cfg.Metrics,
			})
		}
		if err != nil {
			// Unreachable in practice: the same (prog, opt) compiled at
			// Submit. Retire the job with the recompile error.
			p.mu.Lock()
			p.retryWait--
			p.finishJobLocked(j, fmt.Errorf("tenant: retry of job %q failed to restart: %w", j.cfg.Name, err))
			p.mu.Unlock()
			p.progress()
			return
		}
		if sched != nil {
			j.sched = sched
		}
		if n, ok := mgr.(executive.Notifier); ok {
			n.SetNotify(p.progress)
		}
	}
	p.mu.Lock()
	p.retryWait--
	if j.finished.Load() {
		p.mu.Unlock()
		p.progress()
		return
	}
	j.mgrv.Store(mgr)
	j.retrying.Store(false)
	p.activateLocked(j)
	p.mu.Unlock()
	p.progress()
}

// deadlineFire aborts job j — and only j — when its deadline timer
// fires: the error wraps context.DeadlineExceeded and never retries.
func (p *Pool) deadlineFire(j *Job) {
	p.killJob(j, fmt.Errorf("tenant: job %q exceeded its deadline of %v: %w",
		j.cfg.Name, j.cfg.Deadline, context.DeadlineExceeded))
}

// killJob fails one job with err without retrying it — the shared body
// of the deadline timer and the explicit Job.Abort. A job still queued
// behind admission control (or backing off between attempts) is retired
// directly; a running job is aborted through its manager, which refuses
// if the state machine already completed — a job that beat the abort
// keeps its results.
//
// The whole thing loops because the abort races concurrent attempt
// failures: if a retry swaps in a fresh driver between the driver()
// capture and the Abort, the abort lands on the dead attempt and failJob
// drops it as stale — and the caller fires only once, so without
// re-firing here the new attempt would outlive the abort unbounded.
// Each pass either retires the job or observes an attempt swap, so the
// loop is bounded by the retry budget.
func (p *Pool) killJob(j *Job, err error) {
	for {
		p.mu.Lock()
		if j.finished.Load() {
			p.mu.Unlock()
			return
		}
		queued := false
		for i, q := range p.waitq {
			if q == j {
				p.waitq = append(p.waitq[:i], p.waitq[i+1:]...)
				queued = true
				break
			}
		}
		if queued || j.retrying.Load() {
			p.finishJobLocked(j, err)
			p.mu.Unlock()
			p.progress()
			return
		}
		m := j.driver()
		p.mu.Unlock()
		// The abort happens outside p.mu (manager locks and the async
		// notify path re-enter the pool), exactly as in Pool.Abort.
		m.Abort(err)
		if merr := m.Err(); merr == nil {
			p.checkFinished(j)
			p.progress()
			return
		} else {
			p.failJob(j, m, merr, false)
		}
		if j.finished.Load() {
			p.progress()
			return
		}
		// failJob dropped the abort as stale: m's attempt already died and
		// a retry owns the job now. Go again against the current attempt.
	}
}

// watchdog is the pool's liveness probe, running while StallTimeout is
// enabled. Each tick it re-wakes parked workers (the recovery path an
// injected dropped wakeup is priced against) and sweeps the active jobs
// for wedges: a job with tasks in flight and no dispatch or completion
// for a full StallTimeout is failed as wedged — without flagging healthy
// co-tenants, whose own lastTouch stays fresh.
func (p *Pool) watchdog(timeout time.Duration) {
	defer close(p.watchDone)
	tick := timeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.watchStop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		jobs := append([]*Job(nil), p.active...)
		// Bare re-wake, no gen bump: a worker that parked behind a
		// dropped wakeup re-sweeps; one that parked legitimately finds
		// nothing and parks again.
		p.cond.Broadcast()
		p.mu.Unlock()
		now := time.Now().UnixNano()
		for _, j := range jobs {
			if j.finished.Load() || j.retrying.Load() {
				continue
			}
			lt := j.lastTouch.Load()
			if lt == 0 || now-lt < int64(timeout) {
				continue
			}
			m := j.driver()
			inflight := m.InFlight()
			if inflight == 0 {
				continue
			}
			err := fmt.Errorf("tenant: job %q wedged: no progress for %v with %d tasks in flight",
				j.cfg.Name, time.Duration(now-lt), inflight)
			m.Abort(err)
			if merr := m.Err(); merr == nil {
				p.checkFinished(j) // finished between the probe and the abort
			} else {
				p.failJob(j, m, merr, true)
			}
			p.progress()
		}
	}
}

// stopWatchdog stops the watchdog goroutine and joins it. Safe to call
// when no watchdog was started.
func (p *Pool) stopWatchdog() {
	if p.watchStop == nil {
		return
	}
	close(p.watchStop)
	<-p.watchDone
}
