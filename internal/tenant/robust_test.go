package tenant

// Tests for the pool's production-tenancy surface: deadlines, retries,
// admission control, idempotent lifecycle, and deterministic fault
// injection (including the wedged-worker watchdog probe, exercised under
// both the serial and sharded pool drivers).

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/executive"
	"repro/internal/fault"
)

func TestPoolCloseIdempotent(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	prog, a, b, c := buildCopyChain(t, 32)
	if _, err := p.Submit(prog, core.Options{}, JobConfig{}); err != nil {
		t.Fatal(err)
	}
	rep1, err1 := p.Close()
	rep2, err2 := p.Close()
	if rep1 != rep2 || !errors.Is(err2, err1) {
		t.Fatalf("second Close = (%p, %v), want the first's (%p, %v)", rep2, err2, rep1, err1)
	}
	checkCopyChain(t, a, b, c)

	// A third Close racing Submit and Abort must stay safe and give the
	// same answer.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rep, err := p.Close(); rep != rep1 || !errors.Is(err, err1) {
				t.Errorf("concurrent Close = (%p, %v)", rep, err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Submit(prog, core.Options{}, JobConfig{}); !errors.Is(err, ErrPoolClosed) {
			t.Errorf("Submit on closed pool = %v, want ErrPoolClosed", err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Abort(errors.New("late abort")) // no active jobs; must be a no-op
	}()
	wg.Wait()
}

func TestPoolSubmitClosedSentinel(t *testing.T) {
	p, err := NewPool(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	prog, _, _, _ := buildCopyChain(t, 8)
	_, serr := p.Submit(prog, core.Options{}, JobConfig{Name: "tardy"})
	if !errors.Is(serr, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want errors.Is ErrPoolClosed", serr)
	}
	if !strings.Contains(serr.Error(), "tardy") {
		t.Fatalf("error %q does not name the job", serr)
	}
}

func TestPoolDeadlineAbortIsIsolated(t *testing.T) {
	p, err := NewPool(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	slow := buildSleepChain(t, 2, 64, 2*time.Millisecond)
	fast, a, b, c := buildCopyChain(t, 64)
	jSlow, err := p.Submit(slow, core.Options{Grain: 1}, JobConfig{
		Name: "doomed", Deadline: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jFast, err := p.Submit(fast, core.Options{}, JobConfig{Name: "steady"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jFast.Wait(); err != nil {
		t.Fatalf("co-tenant failed: %v", err)
	}
	_, derr := jSlow.Wait()
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline job error = %v, want errors.Is context.DeadlineExceeded", derr)
	}
	if !strings.Contains(derr.Error(), "doomed") {
		t.Fatalf("error %q does not name the job", derr)
	}
	if _, err := p.Close(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close error = %v, want the deadline abort", err)
	}
	checkCopyChain(t, a, b, c)
}

func TestPoolRetryRecoversInjectedError(t *testing.T) {
	for _, kind := range []fault.Kind{fault.GrainError, fault.GrainPanic} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			p, err := NewPool(Config{
				Workers: 4,
				Faults: &fault.Spec{Rules: []fault.Rule{{
					Kind: kind, Job: 0, Phase: 1, Granule: 7, Worker: -1, Count: 1,
				}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			prog, a, b, c := buildCopyChain(t, 32)
			clean, _, _, _ := buildCopyChain(t, 32)
			j, err := p.Submit(prog, core.Options{}, JobConfig{
				Name: "flaky", Retry: 2, Backoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			co, err := p.Submit(clean, core.Options{}, JobConfig{Name: "steady"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := j.Wait(); err != nil {
				t.Fatalf("retried job failed: %v", err)
			}
			if got := j.Attempts(); got != 2 {
				t.Errorf("Attempts = %d, want 2", got)
			}
			if _, err := co.Wait(); err != nil {
				t.Fatalf("co-tenant failed: %v", err)
			}
			rep, err := p.Close()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Retries != 1 {
				t.Errorf("Report.Retries = %d, want 1", rep.Retries)
			}
			if rep.Faults < 1 {
				t.Errorf("Report.Faults = %d, want >= 1", rep.Faults)
			}
			checkCopyChain(t, a, b, c)
		})
	}
}

func TestPoolRetryExhaustionSticks(t *testing.T) {
	p, err := NewPool(Config{
		Workers: 2,
		Faults: &fault.Spec{Rules: []fault.Rule{{
			Kind: fault.GrainError, Job: 0, Phase: 0, Granule: 3, Worker: -1, Count: 10,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, _, _, _ := buildCopyChain(t, 16)
	j, err := p.Submit(prog, core.Options{}, JobConfig{
		Name: "cursed", Retry: 2, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := j.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "injected") {
		t.Fatalf("exhausted job error = %v, want the injected error", werr)
	}
	if got := j.Attempts(); got != 3 {
		t.Errorf("Attempts = %d, want 3 (original + 2 retries)", got)
	}
	if _, err := p.Close(); err == nil {
		t.Fatal("Close must surface the stuck job error")
	}
}

func TestPoolAdmissionSaturated(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow := buildSleepChain(t, 2, 32, time.Millisecond)
	prog, _, _, _ := buildCopyChain(t, 16)
	j, err := p.Submit(slow, core.Options{Grain: 1}, JobConfig{Name: "hog"})
	if err != nil {
		t.Fatal(err)
	}
	_, serr := p.Submit(prog, core.Options{}, JobConfig{Name: "refused"})
	if !errors.Is(serr, ErrPoolSaturated) {
		t.Fatalf("saturated Submit = %v, want errors.Is ErrPoolSaturated", serr)
	}
	if !strings.Contains(serr.Error(), "refused") {
		t.Fatalf("error %q does not name the job", serr)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	// Slot freed: the pool admits again.
	j2, err := p.Submit(prog, core.Options{}, JobConfig{Name: "second"})
	if err != nil {
		t.Fatalf("post-drain Submit = %v", err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolAdmissionQueues(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, MaxActive: 1, Queue: true})
	if err != nil {
		t.Fatal(err)
	}
	first := buildSleepChain(t, 2, 16, time.Millisecond)
	second, a, b, c := buildCopyChain(t, 32)
	j1, err := p.Submit(first, core.Options{Grain: 1}, JobConfig{Name: "front"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := p.Submit(second, core.Options{}, JobConfig{Name: "queued"})
	if err != nil {
		t.Fatalf("queued Submit = %v", err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
	if j1.end.After(j2.end) {
		t.Error("queued job finished before the job it queued behind started rundown")
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	checkCopyChain(t, a, b, c)
}

func TestPoolQueuedJobDeadline(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, MaxActive: 1, Queue: true})
	if err != nil {
		t.Fatal(err)
	}
	front := buildSleepChain(t, 2, 64, 2*time.Millisecond)
	prog, _, _, _ := buildCopyChain(t, 16)
	if _, err := p.Submit(front, core.Options{Grain: 1}, JobConfig{Name: "front"}); err != nil {
		t.Fatal(err)
	}
	// The queued job's deadline expires while it is still waiting for a
	// slot: queue wait counts against the deadline.
	j, err := p.Submit(prog, core.Options{}, JobConfig{
		Name: "impatient", Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := j.Wait(); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("queued job error = %v, want deadline exceeded", werr)
	}
	p.Close()
}

// TestPoolWedgedWorkerProbe is the stall-detector test under injected
// wedged workers: one wedged worker must trip the watchdog probe against
// the job it wedged — and only that job — while healthy co-tenants run
// to completion, under both the serial and sharded pool drivers.
func TestPoolWedgedWorkerProbe(t *testing.T) {
	for _, mk := range []executive.ManagerKind{executive.SerialManager, executive.ShardedManager} {
		t.Run(mk.String(), func(t *testing.T) {
			p, err := NewPool(Config{
				Workers: 4, Manager: mk,
				StallTimeout: 50 * time.Millisecond,
				Faults: &fault.Spec{Rules: []fault.Rule{{
					Kind: fault.WorkerWedge, Worker: -1, Job: -1, Phase: -1, Count: 1,
				}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			progA, _, _, _ := buildCopyChain(t, 64)
			progB, a, b, c := buildCopyChain(t, 64)
			jA, err := p.Submit(progA, core.Options{}, JobConfig{Name: "left", Weight: 1})
			if err != nil {
				t.Fatal(err)
			}
			jB, err := p.Submit(progB, core.Options{}, JobConfig{Name: "right", Weight: 1})
			if err != nil {
				t.Fatal(err)
			}
			_, errA := jA.Wait()
			_, errB := jB.Wait()
			wedged := 0
			for _, werr := range []error{errA, errB} {
				if werr != nil {
					wedged++
					if !strings.Contains(werr.Error(), "wedged") {
						t.Errorf("failed job error = %v, want a wedge diagnosis", werr)
					}
				}
			}
			if wedged != 1 {
				t.Fatalf("%d jobs failed, want exactly the wedged one (errA=%v errB=%v)",
					wedged, errA, errB)
			}
			if errB == nil {
				checkCopyChain(t, a, b, c)
			}
			rep, _ := p.Close()
			if rep.Faults < 1 {
				t.Errorf("Report.Faults = %d, want >= 1", rep.Faults)
			}
		})
	}
}

// TestPoolWedgeRetryRecovers pairs the wedge with a retry budget: the
// watchdog fails the wedged attempt, the retry reruns it clean.
func TestPoolWedgeRetryRecovers(t *testing.T) {
	p, err := NewPool(Config{
		Workers:      2,
		StallTimeout: 40 * time.Millisecond,
		Faults: &fault.Spec{Rules: []fault.Rule{{
			Kind: fault.WorkerWedge, Worker: -1, Job: -1, Phase: -1, Count: 1,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, a, b, c := buildCopyChain(t, 32)
	j, err := p.Submit(prog, core.Options{}, JobConfig{
		Name: "wedge-retry", Retry: 2, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := j.Wait(); werr != nil {
		t.Fatalf("retried wedge failed: %v", werr)
	}
	if got := j.Attempts(); got < 2 {
		t.Errorf("Attempts = %d, want >= 2", got)
	}
	rep, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries < 1 {
		t.Errorf("Report.Retries = %d, want >= 1", rep.Retries)
	}
	checkCopyChain(t, a, b, c)
}

func TestPoolPreemptBound(t *testing.T) {
	p, err := NewPool(Config{Workers: 4, PreemptBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	progA, _, _, _ := buildCopyChain(t, 96)
	progB, _, _, _ := buildCopyChain(t, 96)
	jA, err := p.Submit(progA, core.Options{Grain: 32}, JobConfig{Name: "wide"})
	if err != nil {
		t.Fatal(err)
	}
	jB, err := p.Submit(progB, core.Options{Grain: 32}, JobConfig{Name: "tall"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := jB.Wait(); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxBackfillTask > 2 {
		t.Errorf("MaxBackfillTask = %d granules, want <= PreemptBound 2", rep.MaxBackfillTask)
	}
}

// TestPoolMixedCampaign drives a pool through a compound campaign —
// slow grains, a management delay, a dropped wakeup — and expects every
// job to finish with correct results: bounded degradation, no failures.
func TestPoolMixedCampaign(t *testing.T) {
	p, err := NewPool(Config{
		Workers:      4,
		StallTimeout: 50 * time.Millisecond,
		Faults: &fault.Spec{Rules: []fault.Rule{
			{Kind: fault.GrainSlow, Job: -1, Phase: -1, Granule: 5, Worker: -1, Factor: 3, Count: 2},
			{Kind: fault.MgmtDelay, Job: -1, Delay: 200, Count: 2},
			{Kind: fault.DropWakeup, Count: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	progA, a1, b1, c1 := buildCopyChain(t, 64)
	progB, a2, b2, c2 := buildCopyChain(t, 48)
	jA, err := p.Submit(progA, core.Options{}, JobConfig{Name: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	jB, err := p.Submit(progB, core.Options{}, JobConfig{Name: "beta", Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jA.Wait(); err != nil {
		t.Fatalf("alpha: %v", err)
	}
	if _, err := jB.Wait(); err != nil {
		t.Fatalf("beta: %v", err)
	}
	rep, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults < 1 {
		t.Errorf("Report.Faults = %d, want >= 1", rep.Faults)
	}
	checkCopyChain(t, a1, b1, c1)
	checkCopyChain(t, a2, b2, c2)
}
