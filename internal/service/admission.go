package service

// Latency-class admission: before a "latency" job joins the shared
// pool, the daemon projects how much co-tenancy would slow its tasks
// down, from quantities the pool already measures — the p99
// ask-to-dispatch wait (rundown_dispatch_wait), the average compute
// time per completed task, the admission-queue depth, and the largest
// non-preemptible backfill grain any worker has held
// (Report.MaxBackfillTask). The projection is deliberately
// conservative and deterministic at the extremes: a non-empty
// admission queue always projects 100% (the job would wait behind
// whole other jobs, not just grains), and a quiet pool with no
// measured wait projects 0%.

import (
	"fmt"

	rundown "repro"
	"repro/internal/telemetry"
)

// AdmissionError is the structured refusal a latency-class submit gets
// when the projected slowdown exceeds its tolerance. It travels as the
// HTTP 429 response body and survives errors.As through the pool's
// submit wrapping.
type AdmissionError struct {
	// Class and TolerancePct echo the refused job's request.
	Class        string  `json:"class"`
	TolerancePct float64 `json:"tolerance_pct"`
	// ProjectedPct is the slowdown projection that exceeded it.
	ProjectedPct float64 `json:"projected_pct"`
	// The measurements behind the projection.
	DispatchWaitP99 int64 `json:"dispatch_wait_p99_ns"`
	AvgTaskNanos    int64 `json:"avg_task_ns"`
	MaxBackfillTask int64 `json:"max_backfill_task"`
	QueuedJobs      int   `json:"queued_jobs"`
	ActiveJobs      int   `json:"active_jobs"`
	// Reason states which term drove the projection.
	Reason string `json:"reason"`
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("latency admission refused: projected slowdown %.1f%% exceeds tolerance %.1f%% (%s)",
		e.ProjectedPct, e.TolerancePct, e.Reason)
}

// measureFunc supplies the telemetry half of the projection: the p99
// dispatch wait and the mean compute time per completed task, both in
// nanoseconds. A field on Server so tests can pin measurements.
type measureFunc func() (wait99, avgTask int64)

// registryMeasure reads the projection inputs from the shared metric
// registry — the same counters and histograms the pool maintains for
// /metrics (telemetry registration is idempotent by name, so this Set
// aliases the pool's).
func registryMeasure(reg *telemetry.Registry) measureFunc {
	set := telemetry.NewSet(reg)
	return func() (wait99, avgTask int64) {
		wait99 = set.DispatchWait.Quantile(0.99)
		if n := set.Completions.Value(); n > 0 {
			avgTask = set.ComputeTime.Value() / n
		}
		return wait99, avgTask
	}
}

// projectSlowdown estimates, in percent, how much slower a
// latency-class task would run on the pool as currently loaded,
// relative to an unloaded pool:
//
//   - queued jobs waiting behind admission control project 100%
//     outright — the new job would queue behind whole jobs;
//   - a pool with no completed tasks yet has no measured interference
//     and projects 0% (quiet-start admits);
//   - otherwise each task is projected to pay the measured p99
//     dispatch wait, plus one full average task when an active
//     co-tenant holds non-preemptible backfill grains (a worker
//     serving a foreign grain cannot be preempted mid-task):
//     100 * (wait99 + block) / avgTask.
func projectSlowdown(wait99, avgTask int64, v rundown.AdmissionView) (pct float64, reason string) {
	if v.Queued > 0 {
		return 100, fmt.Sprintf("%d jobs already queued behind admission control", v.Queued)
	}
	if avgTask <= 0 {
		return 0, "no completed tasks measured yet"
	}
	var block int64
	reason = "p99 dispatch wait vs mean task time"
	if v.Active > 0 && v.MaxBackfillTask > 0 {
		block = avgTask
		reason = fmt.Sprintf("active co-tenant holds non-preemptible backfill grains (max %d granules)", v.MaxBackfillTask)
	}
	return 100 * float64(wait99+block) / float64(avgTask), reason
}

// admit is the AdmitFunc the daemon installs on its pool. Classes other
// than "latency" pass through to the pool's own high-water admission.
func (s *Server) admit(jc rundown.PoolJobConfig, v rundown.AdmissionView) error {
	if jc.Class != ClassLatency {
		return nil
	}
	wait99, avgTask := s.measure()
	pct, reason := projectSlowdown(wait99, avgTask, v)
	if pct <= jc.Tolerance {
		return nil
	}
	return &AdmissionError{
		Class:           jc.Class,
		TolerancePct:    jc.Tolerance,
		ProjectedPct:    pct,
		DispatchWaitP99: wait99,
		AvgTaskNanos:    avgTask,
		MaxBackfillTask: v.MaxBackfillTask,
		QueuedJobs:      v.Queued,
		ActiveJobs:      v.Active,
		Reason:          reason,
	}
}
