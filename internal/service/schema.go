// Package service is rundown-as-a-service: a long-lived HTTP daemon
// (cmd/rundownd) owning one hot multi-tenant pool. Jobs arrive as
// declarative JSON specs, run on the shared workers under the
// overlap-first dispatch policy, and are observable end to end — SSE
// progress snapshots, Prometheus metrics, pprof, and downloadable
// flight-recorder traces. A "latency" service class adds measured
// admission control: the daemon projects the slowdown a co-tenant's
// backfill would impose and refuses the job (HTTP 429, structured
// reason) when the projection exceeds the job's tolerance.
package service

import (
	"fmt"
	"time"

	rundown "repro"
)

// Service classes. The pool itself is class-agnostic; these labels are
// the service layer's contract.
const (
	// ClassBatch is throughput work with no admission predicate beyond
	// the pool's high-water mark.
	ClassBatch = "batch"
	// ClassLatency is interference-sensitive work: admitted only when
	// the projected co-tenancy slowdown stays within the job's
	// tolerance (see admission.go).
	ClassLatency = "latency"
)

// WorkloadSpec declares a job's program without shipping code: a named
// generator plus its parameters. The daemon materializes it with the
// workload package's builders.
type WorkloadSpec struct {
	// Kind selects the generator: "chain" (default) — a linear program
	// of Phases phases linked by Mapping — or "casper", the paper's
	// 22-phase CASPER census program.
	Kind string `json:"kind,omitempty"`
	// Mapping is the chain's between-phase enablement mapping name
	// ("identity" default; "null", "universal", "forward-indirect",
	// "reverse-indirect", "seam").
	Mapping string `json:"mapping,omitempty"`
	// Phases and Granules size the chain (defaults 2 and 256).
	Phases   int `json:"phases,omitempty"`
	Granules int `json:"granules,omitempty"`
	// CostLo and CostHi bound the per-granule virtual cost, drawn
	// uniformly per granule from Seed (defaults 1 and CostLo).
	CostLo int64  `json:"cost_lo,omitempty"`
	CostHi int64  `json:"cost_hi,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// WorkMicros attaches a real per-granule computation: a busy-spin of
	// this many microseconds (0 = none, cap 10000). This is what makes a
	// service job occupy the pool for measurable wall time.
	WorkMicros int `json:"work_us,omitempty"`
	// Cycles unrolls the casper census this many times (casper kind
	// only; default 1).
	Cycles int `json:"cycles,omitempty"`
}

// JobSpec is the POST /v1/jobs request body: the backend-agnostic job
// description, entirely declarative.
type JobSpec struct {
	// Name labels the job in reports and errors (default "jobN").
	Name string `json:"name,omitempty"`
	// Workload declares the program to run.
	Workload WorkloadSpec `json:"workload"`
	// Grain caps granules per task (0 = scheduler default); Overlap
	// enables phase overlap (nil = true, the service default — the
	// paper's subject is overlap, barriers are the opt-in baseline).
	Grain   int   `json:"grain,omitempty"`
	Overlap *bool `json:"overlap,omitempty"`
	// Priority and Weight steer cross-job backfill (tenant pool
	// semantics).
	Priority int `json:"priority,omitempty"`
	Weight   int `json:"weight,omitempty"`
	// DeadlineMillis bounds submit-to-finish wall time (0 = none);
	// Retry/BackoffMillis configure attempt restarts.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	Retry          int   `json:"retry,omitempty"`
	BackoffMillis  int64 `json:"backoff_ms,omitempty"`
	// Class is the service class ("", "batch", "latency");
	// TolerancePct is the latency class's projected-slowdown budget in
	// percent (required > 0 for latency jobs).
	Class        string  `json:"class,omitempty"`
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
	// Faults arms a deterministic fault campaign scoped to this job
	// (staging use). Rule Job fields are rewritten to the submitted
	// job's pool index; worker-scoped rules (WorkerCrash, WorkerSlow)
	// strike the shared pool's workers and so can affect co-tenants.
	Faults *rundown.FaultSpec `json:"faults,omitempty"`
}

// Spec limits: a public daemon refuses absurd programs outright rather
// than letting one spec occupy the pool beyond reason.
const (
	maxPhases     = 64
	maxGranules   = 1 << 20
	maxWorkMicros = 10000
	maxCycles     = 16
)

// normalize applies spec defaults and validates the result.
func (s *JobSpec) normalize() error {
	w := &s.Workload
	if w.Kind == "" {
		w.Kind = "chain"
	}
	if w.Kind != "chain" && w.Kind != "casper" {
		return fmt.Errorf("workload.kind %q unknown (valid kinds: chain|casper)", w.Kind)
	}
	if w.Mapping == "" {
		w.Mapping = "identity"
	}
	if w.Phases == 0 {
		w.Phases = 2
	}
	if w.Granules == 0 {
		w.Granules = 256
	}
	if w.CostLo == 0 {
		w.CostLo = 1
	}
	if w.CostHi == 0 {
		w.CostHi = w.CostLo
	}
	if w.Cycles == 0 {
		w.Cycles = 1
	}
	switch {
	case w.Phases < 1 || w.Phases > maxPhases:
		return fmt.Errorf("workload.phases %d out of range [1, %d]", w.Phases, maxPhases)
	case w.Granules < 1 || w.Granules > maxGranules:
		return fmt.Errorf("workload.granules %d out of range [1, %d]", w.Granules, maxGranules)
	case w.CostLo < 1 || w.CostHi < w.CostLo:
		return fmt.Errorf("workload cost bounds [%d, %d] invalid (need 1 <= lo <= hi)", w.CostLo, w.CostHi)
	case w.WorkMicros < 0 || w.WorkMicros > maxWorkMicros:
		return fmt.Errorf("workload.work_us %d out of range [0, %d]", w.WorkMicros, maxWorkMicros)
	case w.Cycles < 1 || w.Cycles > maxCycles:
		return fmt.Errorf("workload.cycles %d out of range [1, %d]", w.Cycles, maxCycles)
	}
	switch s.Class {
	case "", ClassBatch:
	case ClassLatency:
		if s.TolerancePct <= 0 {
			return fmt.Errorf("class %q requires tolerance_pct > 0", ClassLatency)
		}
	default:
		return fmt.Errorf("class %q unknown (valid classes: %s|%s)", s.Class, ClassBatch, ClassLatency)
	}
	if s.Grain < 0 {
		return fmt.Errorf("grain %d negative", s.Grain)
	}
	if s.DeadlineMillis < 0 || s.BackoffMillis < 0 || s.Retry < 0 {
		return fmt.Errorf("deadline_ms, backoff_ms and retry must be non-negative")
	}
	return nil
}

// buildProgram materializes the workload spec into a runnable program,
// attaching the busy-spin work function when work_us is set.
func (s *JobSpec) buildProgram() (*rundown.Program, error) {
	w := s.Workload
	cost := rundown.UniformCost(rundown.Cost(w.CostLo), rundown.Cost(w.CostHi), w.Seed)
	var prog *rundown.Program
	var err error
	switch w.Kind {
	case "casper":
		prog, err = rundown.CasperProgram(rundown.CasperConfig{
			Cycles: w.Cycles, Cost: cost, Seed: w.Seed,
		})
	default:
		kind, kerr := rundown.ParseMappingKind(w.Mapping)
		if kerr != nil {
			return nil, kerr
		}
		prog, err = rundown.Chain(kind, w.Phases, w.Granules, cost, w.Seed)
	}
	if err != nil {
		return nil, err
	}
	if w.WorkMicros > 0 {
		work := spinWork(time.Duration(w.WorkMicros) * time.Microsecond)
		for _, ph := range prog.Phases {
			ph.Work = work
		}
	}
	return prog, nil
}

// options converts the spec's scheduler knobs.
func (s *JobSpec) options() rundown.Options {
	opt := rundown.Options{Grain: s.Grain, Overlap: true}
	if s.Overlap != nil {
		opt.Overlap = *s.Overlap
	}
	return opt
}

// spinWork returns a per-granule work function that busy-spins for d —
// real computation the pool's workers must serve, without touching
// shared state.
func spinWork(d time.Duration) rundown.WorkFn {
	return func(rundown.GranuleID) {
		for end := time.Now().Add(d); time.Now().Before(end); {
		}
	}
}
