package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	rundown "repro"
	"repro/internal/trace"
)

// Config shapes the daemon's one long-lived pool and its HTTP surface.
type Config struct {
	// Workers is the pool's worker count (0 = GOMAXPROCS).
	Workers int
	// Manager selects the per-job management layer.
	Manager rundown.ExecManager
	// MaxActive arms pool admission control at this high-water mark
	// (0 = unbounded); Queue parks over-limit submits instead of
	// refusing them.
	MaxActive int
	Queue     bool
	// PreemptBound caps backfill task grains (0 = uncapped).
	PreemptBound int
	// StallTimeout arms the wedged-job watchdog (0 = a 5s default —
	// generous enough for long busy-spin tasks; negative disables).
	StallTimeout time.Duration
	// SamplePeriod is the SSE snapshot cadence for both the pool stream
	// and per-job streams (0 = 250ms).
	SamplePeriod time.Duration
}

// defaults the zero Config resolves to.
const (
	defaultStall  = 5 * time.Second
	defaultSample = 250 * time.Millisecond
)

// Server is the rundown service: one hot pool, one metrics registry,
// one flight recorder, and the HTTP handlers that expose them.
type Server struct {
	cfg     Config
	reg     *rundown.MetricsRegistry
	rec     *rundown.TraceRecorder
	pool    *rundown.Pool
	hub     *hub
	mux     *http.ServeMux
	measure measureFunc

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	order    []string
	nextID   int
	draining bool

	wg sync.WaitGroup
}

// jobEntry tracks one submitted job across its HTTP lifetime.
type jobEntry struct {
	id     string
	spec   JobSpec
	handle *rundown.PoolJob
}

// New builds the server and starts its pool. The caller owns the
// lifecycle: serve s.Handler(), then Shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = defaultStall
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = defaultSample
	}
	s := &Server{
		cfg:  cfg,
		reg:  rundown.NewMetricsRegistry(cfg.Workers, "ns"),
		rec:  rundown.NewTraceRecorder(cfg.Workers),
		hub:  newHub(),
		jobs: make(map[string]*jobEntry),
	}
	s.measure = registryMeasure(s.reg)
	opts := []rundown.Option{
		rundown.WithWorkers(cfg.Workers),
		rundown.WithManager(cfg.Manager),
		rundown.WithPool(),
		rundown.WithMetricsRegistry(s.reg),
		rundown.WithTraceRecorder(s.rec),
		rundown.WithLiveFaults(),
		rundown.WithAdmitFunc(s.admit),
		rundown.WithObserver(s.poolObserver),
		rundown.WithObservePeriod(cfg.SamplePeriod),
		rundown.WithStallTimeout(cfg.StallTimeout),
	}
	if cfg.MaxActive > 0 {
		opts = append(opts, rundown.WithAdmission(cfg.MaxActive, cfg.Queue))
	}
	if cfg.PreemptBound > 0 {
		opts = append(opts, rundown.WithPreemptBound(cfg.PreemptBound))
	}
	r, err := rundown.New(opts...)
	if err != nil {
		return nil, err
	}
	pool, err := r.StartPool()
	if err != nil {
		return nil, err
	}
	s.pool = pool
	s.routes()
	return s, nil
}

// poolTopic is the whole-pool SSE stream's hub topic.
const poolTopic = "pool"

// poolObserver feeds the pool-wide SSE stream from the Runner's unified
// observer: periodic "snapshot" events, and on Close the stream's one
// terminal "final" event (the Observer contract's Final snapshot).
func (s *Server) poolObserver(sn rundown.Snapshot) {
	b, err := json.Marshal(sn)
	if err != nil {
		return
	}
	if sn.Final {
		s.hub.finish(poolTopic, event{name: "final", data: b})
		return
	}
	s.hub.publish(poolTopic, event{name: "snapshot", data: b})
}

// Handler returns the daemon's full HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/abort", s.handleAbort)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/events", s.handlePoolEvents)
	s.mux.HandleFunc("GET /v1/status", s.handlePoolStatus)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// JobStatus is the GET /v1/jobs/{id} response (and the per-job SSE
// event payload): the job's lifecycle state plus, once terminal, its
// full JobReport in the pinned wire schema.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Class string `json:"class,omitempty"`
	// State is "queued", "running", "done" or "failed".
	State         string  `json:"state"`
	TolerancePct  float64 `json:"tolerance_pct,omitempty"`
	Tasks         int64   `json:"tasks"`
	BackfillTasks int64   `json:"backfill_tasks"`
	// Error and Report are set once the job is terminal.
	Error  string             `json:"error,omitempty"`
	Report *rundown.JobReport `json:"report,omitempty"`
}

// status builds the entry's current JobStatus. Terminal state is read
// off the handle's Done channel, so a "done"/"failed" status always has
// the report behind it.
func (s *Server) status(e *jobEntry) JobStatus {
	h := e.handle
	st := JobStatus{
		ID:            e.id,
		Name:          h.Name(),
		Class:         h.Class(),
		TolerancePct:  e.spec.TolerancePct,
		Tasks:         h.Tasks(),
		BackfillTasks: h.BackfillTasks(),
	}
	select {
	case <-h.Done():
	default:
		if h.Started() {
			st.State = "running"
		} else {
			st.State = "queued"
		}
		return st
	}
	exec, err := h.Wait()
	rep := &rundown.JobReport{
		Name: h.Name(), Err: err, Exec: exec,
		Backfill:  h.BackfillTasks(),
		Attempts:  h.Attempts(),
		QueueWait: h.QueueWait(),
	}
	rep.DeadlineMargin, rep.HasDeadline = h.DeadlineMargin()
	st.Report = rep
	if err != nil {
		st.State = "failed"
		st.Error = err.Error()
	} else {
		st.State = "done"
	}
	return st
}

// errAborted is the failure an HTTP abort retires a job with.
var errAborted = errors.New("service: job aborted by request")

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the non-2xx response envelope. Admission carries the
// structured latency-class refusal when that is what happened.
type errorBody struct {
	Error     string          `json:"error"`
	Admission *AdmissionError `json:"admission,omitempty"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	prog, err := spec.buildProgram()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad workload: %v", err)
		return
	}

	// Reserve the ID under the lock, but submit outside it: Submit can
	// run the admission predicate and block briefly, and status
	// handlers must stay responsive.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: no new jobs accepted")
		return
	}
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	name := spec.Name
	if name == "" {
		name = id
	}
	s.mu.Unlock()

	h, err := s.pool.Submit(prog, spec.options(), rundown.PoolJobConfig{
		Name:      name,
		Priority:  spec.Priority,
		Weight:    spec.Weight,
		Deadline:  time.Duration(spec.DeadlineMillis) * time.Millisecond,
		Retry:     spec.Retry,
		Backoff:   time.Duration(spec.BackoffMillis) * time.Millisecond,
		Class:     spec.Class,
		Tolerance: spec.TolerancePct,
	})
	if err != nil {
		var adm *AdmissionError
		switch {
		case errors.As(err, &adm):
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Admission: adm})
		case errors.Is(err, rundown.ErrPoolSaturated):
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, rundown.ErrPoolClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	e := &jobEntry{id: id, spec: spec, handle: h}
	s.mu.Lock()
	s.jobs[id] = e
	s.order = append(s.order, id)
	s.mu.Unlock()

	// A job-scoped fault campaign: the spec's rules are rewritten to
	// this job's pool index and armed on the live plan. Worker-scoped
	// rules still strike the shared pool's workers.
	if spec.Faults != nil && len(spec.Faults.Rules) > 0 {
		rules := append([]rundown.FaultRule(nil), spec.Faults.Rules...)
		for i := range rules {
			rules[i].Job = h.Index()
		}
		if ferr := s.pool.InjectFaults(rules); ferr != nil {
			h.Abort(fmt.Errorf("service: fault injection failed: %w", ferr))
			writeError(w, http.StatusInternalServerError, "fault injection failed: %v", ferr)
			return
		}
	}

	s.watch(e)
	writeJSON(w, http.StatusAccepted, s.status(e))
}

// watch streams one job's lifecycle into its SSE topic: periodic
// "snapshot" events while it runs, then exactly one terminal "final"
// event carrying the full report — the per-job mirror of the Observer
// contract's single Final snapshot.
func (s *Server) watch(e *jobEntry) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.SamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-e.handle.Done():
				st := s.status(e)
				if b, err := json.Marshal(st); err == nil {
					s.hub.finish(e.id, event{name: "final", data: b})
				}
				return
			case <-tick.C:
				st := s.status(e)
				if b, err := json.Marshal(st); err == nil {
					s.hub.publish(e.id, event{name: "snapshot", data: b})
				}
			}
		}
	}()
}

// lookup resolves a path's {id} to its entry.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *jobEntry {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.jobs[id]
	s.mu.Unlock()
	if e == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return e
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if e := s.lookup(w, r); e != nil {
		writeJSON(w, http.StatusOK, s.status(e))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*jobEntry, 0, len(s.order))
	for _, id := range s.order {
		entries = append(entries, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(entries))}
	for _, e := range entries {
		out.Jobs = append(out.Jobs, s.status(e))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	select {
	case <-e.handle.Done():
		writeError(w, http.StatusConflict, "job %q already finished", e.id)
		return
	default:
	}
	e.handle.Abort(errAborted)
	writeJSON(w, http.StatusAccepted, s.status(e))
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if e := s.lookup(w, r); e != nil {
		s.hub.serveSSE(w, r, e.id)
	}
}

func (s *Server) handlePoolEvents(w http.ResponseWriter, r *http.Request) {
	s.hub.serveSSE(w, r, poolTopic)
}

// handleTrace serves the job's slice of the pool's flight-recorder
// trace in the versioned binary format — the file rundownsim -replay
// and -tracediff consume.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	t := s.rec.Take().FilterJob(e.handle.Index())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.trace", e.id))
	if err := trace.Write(w, t); err != nil {
		// Headers are gone; all we can do is drop the connection short.
		return
	}
}

// PoolStatus is the GET /v1/status response: the live pool sample plus
// the daemon's own bookkeeping.
type PoolStatus struct {
	Workers  int                  `json:"workers"`
	Jobs     int                  `json:"jobs"`
	Draining bool                 `json:"draining"`
	Pool     rundown.PoolSnapshot `json:"pool"`
}

func (s *Server) handlePoolStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, PoolStatus{
		Workers:  s.cfg.Workers,
		Jobs:     jobs,
		Draining: draining,
		Pool:     s.pool.Sample(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": draining})
}

// Shutdown drains the daemon: no new jobs are accepted, running jobs
// finish (the pool Close path), and every SSE stream receives its
// terminal event before closing. If ctx expires first, the remaining
// jobs are aborted and the drain completes anyway. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	var closeErr error
	done := make(chan struct{})
	go func() {
		_, closeErr = s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.pool.Abort(fmt.Errorf("service: drain deadline exceeded: %w", ctx.Err()))
		<-done
	}
	// Every job is terminal now, so each watcher publishes its final
	// event and exits; the pool observer emitted its Final on Close.
	s.wg.Wait()
	s.hub.closeAll()
	return closeErr
}
