package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	rundown "repro"
)

// newTestServer builds a daemon with a small pool and a fast SSE
// cadence, plus its httptest front end. Callers own Shutdown.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.SamplePeriod == 0 {
		cfg.SamplePeriod = 20 * time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// submit POSTs a spec and decodes the response body into out (which may
// be *JobStatus or *errorBody), returning the HTTP status code.
func submit(t *testing.T, ts *httptest.Server, spec any, out any) int {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitTerminal polls a job until done or failed.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// quickSpec is a small job that finishes in tens of milliseconds.
func quickSpec(name string) JobSpec {
	return JobSpec{
		Name: name,
		Workload: WorkloadSpec{
			Kind: "chain", Mapping: "identity", Phases: 2, Granules: 64,
			WorkMicros: 100, Seed: 1,
		},
	}
}

// longSpec is a job that occupies the pool for roughly a second.
func longSpec(name string) JobSpec {
	return JobSpec{
		Name: name,
		Workload: WorkloadSpec{
			Kind: "chain", Mapping: "identity", Phases: 2, Granules: 256,
			WorkMicros: 4000, Seed: 2,
		},
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st JobStatus
	if code := submit(t, ts, quickSpec("etl"), &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.ID == "" || st.Name != "etl" {
		t.Fatalf("submit status: %+v", st)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("job ended %q (error %q), want done", final.State, final.Error)
	}
	if final.Report == nil || final.Report.Exec == nil || final.Report.Exec.Tasks == 0 {
		t.Fatalf("terminal status has no exec report: %+v", final.Report)
	}
	if final.Tasks == 0 {
		t.Error("terminal status reports zero tasks")
	}

	// The job shows up in the listing.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list: %+v", list.Jobs)
	}

	// Pool status and health answer.
	for _, path := range []string{"/v1/status", "/healthz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %v (HTTP %d)", path, err, r.StatusCode)
		}
		if r != nil {
			r.Body.Close()
		}
	}
}

func TestAbort(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st JobStatus
	if code := submit(t, ts, longSpec("doomed"), &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/abort", "", nil)
	if err != nil {
		t.Fatalf("POST abort: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("abort: HTTP %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != "failed" || !strings.Contains(final.Error, "aborted") {
		t.Fatalf("aborted job ended (%q, %q), want failed/aborted", final.State, final.Error)
	}
	// A second abort on the finished job conflicts.
	resp2, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/abort", "", nil)
	if err != nil {
		t.Fatalf("second abort: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second abort: HTTP %d, want 409", resp2.StatusCode)
	}
}

// sseEvents reads a whole SSE stream to EOF, returning the (name, data)
// pairs in order.
func sseEvents(t *testing.T, url string) []event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	var evs []event
	var cur event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				evs = append(evs, cur)
				cur = event{}
			}
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatalf("scan stream: %v", err)
	}
	return evs
}

func TestJobSSETerminalConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{SamplePeriod: 10 * time.Millisecond})
	var st JobStatus
	if code := submit(t, ts, longSpec("streamed"), &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	evs := sseEvents(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(evs) == 0 {
		t.Fatal("stream delivered no events")
	}
	finals := 0
	for i, ev := range evs {
		switch ev.name {
		case "snapshot":
			if finals > 0 {
				t.Errorf("snapshot event %d after the final", i)
			}
		case "final":
			finals++
			if i != len(evs)-1 {
				t.Errorf("final event at %d of %d, want last", i, len(evs))
			}
			var fs JobStatus
			if err := json.Unmarshal(ev.data, &fs); err != nil {
				t.Fatalf("final payload: %v", err)
			}
			if fs.State != "done" && fs.State != "failed" {
				t.Errorf("final payload state %q", fs.State)
			}
			if fs.Report == nil {
				t.Error("final payload has no report")
			}
		default:
			t.Errorf("unknown event name %q", ev.name)
		}
	}
	if finals != 1 {
		t.Fatalf("stream delivered %d final events, want exactly 1", finals)
	}

	// The Observer-conformance mirror: a late subscriber to the finished
	// job's stream gets exactly the terminal event, then EOF.
	late := sseEvents(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(late) != 1 || late[0].name != "final" {
		t.Fatalf("late subscription got %d events (first %q), want exactly the final",
			len(late), eventName(late))
	}
}

func eventName(evs []event) string {
	if len(evs) == 0 {
		return ""
	}
	return evs[0].name
}

func TestPoolSSEStream(t *testing.T) {
	s, ts := newTestServer(t, Config{SamplePeriod: 10 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	var evs []event
	go func() {
		defer wg.Done()
		evs = sseEvents(t, ts.URL+"/v1/events")
	}()

	var st JobStatus
	if code := submit(t, ts, quickSpec("observed"), &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID)
	time.Sleep(30 * time.Millisecond) // at least one sample after the job

	// Draining closes the pool, which emits the stream's terminal event.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	finals := 0
	for _, ev := range evs {
		if ev.name == "final" {
			finals++
			var sn rundown.Snapshot
			if err := json.Unmarshal(ev.data, &sn); err != nil {
				t.Fatalf("final pool snapshot: %v", err)
			}
			if !sn.Final || sn.Backend != rundown.PoolBackend {
				t.Errorf("final snapshot: %+v", sn)
			}
		}
	}
	if finals != 1 {
		t.Fatalf("pool stream delivered %d finals, want exactly 1 (events: %d)", finals, len(evs))
	}
}

func TestTraceDownloadReplays(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := quickSpec("traced")
	var st JobStatus
	if code := submit(t, ts, spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: HTTP %d, %v", resp.StatusCode, err)
	}
	f := t.TempDir() + "/job.trace"
	if err := writeFile(f, raw); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	tr, err := rundown.ReadTraceFile(f)
	if err != nil {
		t.Fatalf("downloaded trace does not parse: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("downloaded trace has no events")
	}
	// The downloaded schedule replays in the virtual machine against
	// the same (normalized) spec the daemon ran.
	if err := spec.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	prog, err := spec.buildProgram()
	if err != nil {
		t.Fatalf("rebuild program: %v", err)
	}
	res, err := rundown.ReplayTrace(prog, spec.options(), tr)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Makespan <= 0 {
		t.Errorf("replay makespan %d", res.Makespan)
	}
}

func TestConcurrentScrapeAndSubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		var st JobStatus
		if code := submit(t, ts, quickSpec(fmt.Sprintf("par%d", i)), &st); code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, ts, id); st.State != "done" {
			t.Errorf("job %s ended %q", id, st.State)
		}
	}
	close(stop)
	wg.Wait()

	// Per-class counters appear in the scrape once a classified job ran.
	var st JobStatus
	if code := submit(t, ts, classified(quickSpec("cls"), ClassBatch, 0), &st); code != http.StatusAccepted {
		t.Fatalf("classified submit: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{"rundown_class_batch_jobs_total", "rundown_class_batch_done_total"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("scrape missing %s", metric)
		}
	}
}

func classified(s JobSpec, class string, tol float64) JobSpec {
	s.Class = class
	s.TolerancePct = tol
	return s
}

func TestProjectSlowdown(t *testing.T) {
	cases := []struct {
		name           string
		wait99, avg    int64
		view           rundown.AdmissionView
		wantPct        float64
		wantReasonPart string
	}{
		{"queued-jobs-project-100", 0, 1000,
			rundown.AdmissionView{Queued: 2}, 100, "queued"},
		{"quiet-start-projects-0", 0, 0,
			rundown.AdmissionView{}, 0, "no completed tasks"},
		{"wait-vs-task", 50, 1000,
			rundown.AdmissionView{}, 5, "dispatch wait"},
		{"active-backfill-blocks-full-task", 50, 1000,
			rundown.AdmissionView{Active: 1, MaxBackfillTask: 8}, 105, "backfill"},
		{"idle-pool-ignores-old-backfill", 50, 1000,
			rundown.AdmissionView{Active: 0, MaxBackfillTask: 8}, 5, "dispatch wait"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pct, reason := projectSlowdown(tc.wait99, tc.avg, tc.view)
			if pct != tc.wantPct {
				t.Errorf("pct = %v, want %v", pct, tc.wantPct)
			}
			if !strings.Contains(reason, tc.wantReasonPart) {
				t.Errorf("reason %q missing %q", reason, tc.wantReasonPart)
			}
		})
	}
}

func TestLatencyClassAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Quiet pool, no measurements: latency jobs are admitted.
	var st JobStatus
	if code := submit(t, ts, classified(quickSpec("lat-ok"), ClassLatency, 10), &st); code != http.StatusAccepted {
		t.Fatalf("quiet latency submit: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID)

	// Pin the measurement to heavy interference: rejected, 429, with
	// the structured reason.
	s.measure = func() (int64, int64) { return 5000, 1000 } // projects 500%
	var eb errorBody
	if code := submit(t, ts, classified(quickSpec("lat-no"), ClassLatency, 10), &eb); code != http.StatusTooManyRequests {
		t.Fatalf("loaded latency submit: HTTP %d, want 429", code)
	}
	if eb.Admission == nil {
		t.Fatalf("429 body carries no structured admission error: %+v", eb)
	}
	adm := eb.Admission
	if adm.Class != ClassLatency || adm.TolerancePct != 10 || adm.ProjectedPct <= 10 ||
		adm.Reason == "" || adm.DispatchWaitP99 != 5000 || adm.AvgTaskNanos != 1000 {
		t.Errorf("admission error fields: %+v", adm)
	}

	// Within tolerance: admitted again.
	s.measure = func() (int64, int64) { return 50, 1000 } // projects 5%
	if code := submit(t, ts, classified(quickSpec("lat-ok2"), ClassLatency, 10), &st); code != http.StatusAccepted {
		t.Fatalf("tolerable latency submit: HTTP %d", code)
	}
	waitTerminal(t, ts, st.ID)

	// The rejection shows in per-class counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "rundown_class_latency_rejected_total 1") {
		t.Errorf("scrape missing latency rejection counter:\n%s",
			grepLines(string(body), "rundown_class"))
	}
}

func TestLatencyRejectedBehindQueue(t *testing.T) {
	// The deterministic co-tenancy scenario: one slot, one long batch
	// job running, a second batch job queued behind admission control —
	// a latency job must be refused outright.
	_, ts := newTestServer(t, Config{MaxActive: 1, Queue: true})
	var a, b JobStatus
	if code := submit(t, ts, longSpec("batch-a"), &a); code != http.StatusAccepted {
		t.Fatalf("batch-a: HTTP %d", code)
	}
	if code := submit(t, ts, classified(longSpec("batch-b"), ClassBatch, 0), &b); code != http.StatusAccepted {
		t.Fatalf("batch-b: HTTP %d", code)
	}
	if st := getStatus(t, ts, b.ID); st.State != "queued" {
		t.Fatalf("batch-b state %q, want queued", st.State)
	}
	var eb errorBody
	if code := submit(t, ts, classified(quickSpec("lat"), ClassLatency, 50), &eb); code != http.StatusTooManyRequests {
		t.Fatalf("latency behind queue: HTTP %d, want 429", code)
	}
	if eb.Admission == nil || eb.Admission.QueuedJobs == 0 ||
		!strings.Contains(eb.Admission.Reason, "queued") {
		t.Fatalf("admission error: %+v", eb.Admission)
	}
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)
}

func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown-field", `{"workload":{"kind":"chain"},"bogus":1}`},
		{"bad-kind", `{"workload":{"kind":"mapreduce"}}`},
		{"bad-mapping", `{"workload":{"mapping":"telepathy"}}`},
		{"latency-needs-tolerance", `{"workload":{},"class":"latency"}`},
		{"unknown-class", `{"workload":{},"class":"platinum"}`},
		{"work-too-big", `{"workload":{"work_us":60000}}`},
		{"granule-flood", `{"workload":{"granules":99999999}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j999"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var st JobStatus
	if code := submit(t, ts, quickSpec("last"), &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var eb errorBody
	if code := submit(t, ts, quickSpec("too-late"), &eb); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: HTTP %d, want 503", code)
	}
	// The drained job still reports its terminal state.
	if final := getStatus(t, ts, st.ID); final.State != "done" {
		t.Errorf("drained job state %q", final.State)
	}
}

// grepLines filters s to lines containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
