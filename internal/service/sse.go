package service

// Server-sent events plumbing. Each job has a topic; the pool stream is
// one more. The contract mirrors the Observer one (exactly one Final
// snapshot per run): every topic delivers at most one terminal event,
// after which every subscriber's channel closes — and a subscriber
// arriving after the terminal receives exactly that terminal, then EOF.

import (
	"fmt"
	"net/http"
	"sync"
)

// event is one SSE frame: the event name ("snapshot" or "final") and
// its JSON data line.
type event struct {
	name string
	data []byte
}

// subBuffer bounds a subscriber's channel. A subscriber that falls this
// far behind is disconnected (its channel closed) rather than allowed
// to stall the publisher.
const subBuffer = 128

type topic struct {
	subs     map[chan event]struct{}
	terminal *event
	done     bool
}

// hub fans events out to SSE subscribers by topic.
type hub struct {
	mu     sync.Mutex
	topics map[string]*topic
	closed bool
}

func newHub() *hub {
	return &hub{topics: make(map[string]*topic)}
}

func (h *hub) topicLocked(id string) *topic {
	t := h.topics[id]
	if t == nil {
		t = &topic{subs: make(map[chan event]struct{})}
		h.topics[id] = t
	}
	return t
}

// publish sends a non-terminal event to the topic's subscribers.
// Publishing never blocks: a subscriber with a full buffer is dropped.
// Events published after the topic finished are discarded.
func (h *hub) publish(id string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	t := h.topicLocked(id)
	if t.done {
		return
	}
	h.sendLocked(t, ev)
}

// finish delivers the topic's single terminal event and closes every
// subscriber. Idempotent: only the first terminal per topic counts.
// Late subscribers receive the stored terminal and EOF.
func (h *hub) finish(id string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	t := h.topicLocked(id)
	if t.done {
		return
	}
	t.done = true
	t.terminal = &ev
	h.sendLocked(t, ev)
	for ch := range t.subs {
		close(ch)
	}
	t.subs = make(map[chan event]struct{})
}

// sendLocked delivers ev to every subscriber, dropping any whose buffer
// is full. Caller holds h.mu.
func (h *hub) sendLocked(t *topic, ev event) {
	for ch := range t.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(t.subs, ch)
		}
	}
}

// subscribe attaches to a topic. The returned cancel is safe to call
// whether or not the channel has closed. A subscription to a finished
// topic yields the terminal event, then a closed channel.
func (h *hub) subscribe(id string) (<-chan event, func()) {
	ch := make(chan event, subBuffer)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	t := h.topicLocked(id)
	if t.done {
		h.mu.Unlock()
		if t.terminal != nil {
			ch <- *t.terminal
		}
		close(ch)
		return ch, func() {}
	}
	t.subs[ch] = struct{}{}
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		if _, ok := t.subs[ch]; ok {
			delete(t.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
	return ch, cancel
}

// closeAll disconnects every subscriber on every topic (daemon
// shutdown, after the terminal events went out).
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, t := range h.topics {
		for ch := range t.subs {
			close(ch)
		}
		t.subs = make(map[chan event]struct{})
	}
}

// serveSSE streams a topic to one HTTP client until the topic finishes,
// the client disconnects, or the hub closes.
func (h *hub) serveSSE(w http.ResponseWriter, r *http.Request, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := h.subscribe(id)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		}
	}
}
