package rundown_test

// Observer and flight-recorder conformance across backends. The observer
// contract — every run closes its snapshot stream with exactly one Final
// snapshot, on every outcome — is asserted table-driven over all three
// backends crossed with success, cancellation, and a panicking Work
// function (the virtual backend never runs Work functions, so it skips
// the panic row). A separate test hammers the pool's concurrent trace
// recording; it is pinned by the race detector in CI's `go test -race`.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	rundown "repro"
)

// buildPanicJob is a job whose second phase panics partway through.
func buildPanicJob(t testing.TB, n int) rundown.Job {
	t.Helper()
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name: "ok", Granules: n,
			Work:   func(g rundown.GranuleID) {},
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "boom", Granules: n,
			Work: func(g rundown.GranuleID) {
				if g == rundown.GranuleID(n/2) {
					panic("synthetic work failure")
				}
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return rundown.Job{
		Prog: prog,
		Opt:  rundown.Options{Grain: 1, Overlap: true, Costs: rundown.DefaultCosts()},
	}
}

// TestObserverFinalConformance: every backend, every outcome, one Final
// snapshot closing the stream.
func TestObserverFinalConformance(t *testing.T) {
	backends := []struct {
		name string
		opts []rundown.Option
	}{
		{"goroutines", []rundown.Option{rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager)}},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}},
		{"virtual", []rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{Procs: 4})}},
	}
	outcomes := []struct {
		name    string
		virtual bool // the virtual backend can exercise this outcome
		run     func(t *testing.T, r *rundown.Runner) error
	}{
		{"success", true, func(t *testing.T, r *rundown.Runner) error {
			prog, opt := traceChainFine(t, 256)
			_, err := r.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
			if err != nil {
				t.Fatalf("success run failed: %v", err)
			}
			return err
		}},
		{"cancel", true, func(t *testing.T, r *rundown.Runner) error {
			// A pre-cancelled context aborts deterministically on every
			// backend — no sleep-length race on slow hosts.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := r.Run(ctx, buildSleepJob(t, 3, 256, time.Millisecond))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			return err
		}},
		// The virtual backend prices schedules without running Work
		// functions, so a panicking Work body cannot occur there.
		{"panic", false, func(t *testing.T, r *rundown.Runner) error {
			_, err := r.Run(context.Background(), buildPanicJob(t, 128))
			if err == nil {
				t.Fatal("panicking job returned nil error")
			}
			return err
		}},
	}

	for _, b := range backends {
		for _, o := range outcomes {
			if b.name == "virtual" && !o.virtual {
				continue
			}
			t.Run(b.name+"/"+o.name, func(t *testing.T) {
				var mu sync.Mutex
				var snaps []rundown.Snapshot
				opts := append(append([]rundown.Option{}, b.opts...),
					rundown.WithObserver(func(s rundown.Snapshot) {
						mu.Lock()
						snaps = append(snaps, s)
						mu.Unlock()
					}),
					rundown.WithObservePeriod(time.Millisecond),
				)
				r, err := rundown.New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				o.run(t, r)

				mu.Lock()
				defer mu.Unlock()
				if len(snaps) == 0 {
					t.Fatal("no snapshots emitted")
				}
				finals := 0
				for _, s := range snaps {
					if s.Final {
						finals++
					}
				}
				if finals != 1 {
					t.Errorf("%d Final snapshots, want exactly 1", finals)
				}
				last := snaps[len(snaps)-1]
				if !last.Final {
					t.Error("stream did not close with the Final snapshot")
				}
				if o.name == "success" && last.Jobs != 0 {
					t.Errorf("successful run's Final snapshot reports %d unfinished jobs, want 0", last.Jobs)
				}
			})
		}
	}
}

// TestPoolTraceConcurrentRecording exercises the flight recorder's
// concurrent hot path — many workers appending to per-worker rings while
// pool-level events go through the shared Emit lock — and checks the
// merged stream is (Time, Seq)-ordered. CI runs this under -race.
func TestPoolTraceConcurrentRecording(t *testing.T) {
	const jobs = 4
	specs := make([]rundown.Job, jobs)
	var total int
	for i := range specs {
		prog, opt := traceChainFine(t, 512+128*i)
		specs[i] = rundown.Job{Prog: prog, Opt: opt}
		total += prog.TotalGranules()
	}
	r, err := rundown.New(
		rundown.WithWorkers(8), rundown.WithManager(rundown.ShardedManager),
		rundown.WithTrace(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trace
	if tr == nil || tr.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(tr.Events); i++ {
		a, b := &tr.Events[i-1], &tr.Events[i]
		if a.Time > b.Time || (a.Time == b.Time && a.Seq > b.Seq) {
			t.Fatalf("merged trace out of order at %d: (%d,%d) before (%d,%d)",
				i, a.Time, a.Seq, b.Time, b.Seq)
		}
	}
	if got := tr.Granules(); got != int64(total) {
		t.Fatalf("concurrent trace completes %d granules, jobs total %d", got, total)
	}
}
