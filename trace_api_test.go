package rundown_test

// Acceptance tests for the flight recorder at the public Runner surface:
// a goroutine-executive trace must replay deterministically in the
// virtual machine with conserved quantities matching exactly, two
// identical-seed virtual runs must produce byte-identical traces
// (tracediff reports zero divergence), and a trace written through
// WithTrace must read back exactly.

import (
	"bytes"
	"context"
	"testing"

	rundown "repro"
	"repro/internal/trace"
)

// traceChainFine is the acceptance workload: the fine-grain identity
// chain of the manager benchmarks at test scale — grain 1, so every
// granule is its own task and the trace exercises the dispatch path as
// hard as the benchmarks do.
func traceChainFine(t testing.TB, n int) (*rundown.Program, rundown.Options) {
	t.Helper()
	a := make([]int64, n)
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name: "fill", Granules: n,
			Work:   func(g rundown.GranuleID) { a[g] = int64(g) * 3 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "scale", Granules: n,
			Work:   func(g rundown.GranuleID) { a[g] += 1 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "sum", Granules: n,
			Work: func(g rundown.GranuleID) { a[g] ^= 7 },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return prog, rundown.Options{
		Grain: 1, Overlap: true, IdentityVia: rundown.IdentityTable,
		Costs: rundown.DefaultCosts(),
	}
}

// TestExecTraceReplaysInSim is the tentpole acceptance: a trace recorded
// from the goroutine executive (fine-grain chain, sharded manager, 8
// workers) replays in the virtual machine as a pinned schedule, and the
// conserved quantities — per-phase granule totals, dispatch count, full
// program completion — match the recorded run exactly.
func TestExecTraceReplaysInSim(t *testing.T) {
	const n = 1 << 10
	prog, opt := traceChainFine(t, n)
	r, err := rundown.New(
		rundown.WithWorkers(8), rundown.WithManager(rundown.ShardedManager),
		rundown.WithDequeCap(32), rundown.WithBatch(16),
		rundown.WithTrace(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trace
	if tr == nil {
		t.Fatal("WithTrace run returned no Report.Trace")
	}
	if tr.Meta.Backend != "exec" || tr.Meta.Manager != "sharded" || tr.Meta.Workers != 8 {
		t.Fatalf("trace meta = %+v, want exec/sharded/8", tr.Meta)
	}
	if got, want := int64(tr.Count(trace.KDispatch)), rep.Tasks; got != want {
		t.Fatalf("trace records %d dispatches, report says %d tasks", got, want)
	}
	if got, want := tr.Granules(), int64(prog.TotalGranules()); got != want {
		t.Fatalf("trace completes %d granules, program has %d", got, want)
	}

	res, err := rundown.ReplayTrace(prog, opt, tr)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if res.Dispatches != rep.Tasks {
		t.Errorf("replay dispatched %d tasks, recorded run dispatched %d", res.Dispatches, rep.Tasks)
	}
	if res.Granules != int64(prog.TotalGranules()) {
		t.Errorf("replay completed %d granules, program has %d", res.Granules, prog.TotalGranules())
	}
	for pi, ph := range prog.Phases {
		if res.PhaseGranules[pi] != int64(ph.Granules) {
			t.Errorf("phase %d: replay completed %d granules, declared %d", pi, res.PhaseGranules[pi], ph.Granules)
		}
	}
	var busy int64
	for _, b := range res.Busy {
		busy += b
	}
	// Unit costs, grain 1: total virtual busy time must equal the granule
	// count exactly — the conservation the virtual timeline is built on.
	if busy != int64(prog.TotalGranules()) {
		t.Errorf("replay busy total %d, want %d (unit-cost granules)", busy, prog.TotalGranules())
	}
	if res.Makespan <= 0 || res.Utilization <= 0 {
		t.Errorf("degenerate replay timeline: makespan=%d util=%f", res.Makespan, res.Utilization)
	}
}

// TestSimTraceDeterministic pins the equal-tick ordering contract end to
// end: two identical-seed virtual runs produce identical traces, and
// DiffTraces reports zero divergence in exact mode.
func TestSimTraceDeterministic(t *testing.T) {
	run := func() *rundown.Trace {
		prog, err := rundown.Chain(rundown.KindIdentity, 3, 512, rundown.UniformCost(1, 9, 42), 42)
		if err != nil {
			t.Fatal(err)
		}
		r, err := rundown.New(
			rundown.WithVirtualTime(rundown.SimConfig{Procs: 8, Mgmt: rundown.ShardedMgmt}),
			rundown.WithTrace(nil),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background(), rundown.Job{
			Prog: prog,
			Opt:  rundown.Options{Grain: 4, Overlap: true, Costs: rundown.DefaultCosts()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Trace
	}
	a, b := run(), run()
	if a.Len() == 0 {
		t.Fatal("empty virtual trace")
	}
	d := rundown.DiffTraces(a, b)
	if !d.Identical {
		t.Fatalf("identical-seed sim runs diverge at event %d: %s", d.DivergeAt, d.Reason)
	}
	if !d.Exact {
		t.Error("virtual-vs-virtual diff should compare exactly")
	}
}

// TestTraceWriteReadRoundTrip checks the WithTrace writer path: the
// binary stream a run writes reads back as exactly the captured trace.
func TestTraceWriteReadRoundTrip(t *testing.T) {
	prog, opt := traceChainFine(t, 256)
	var buf bytes.Buffer
	r, err := rundown.New(
		rundown.WithWorkers(4), rundown.WithManager(rundown.SerialManager),
		rundown.WithTrace(&buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rep.Trace.Len() {
		t.Fatalf("read back %d events, captured %d", got.Len(), rep.Trace.Len())
	}
	d := rundown.DiffTraces(got, rep.Trace)
	if !d.Identical {
		t.Fatalf("file round trip diverges at %d: %s", d.DivergeAt, d.Reason)
	}
}

// TestAdaptiveInPoolCapability pins Caps.AdaptiveInPool: the adaptive
// batching controller never applies inside a REAL tenant pool — the
// capability is false for every pairing, and a traced pool run under
// WithAdaptiveBatching records zero KRetune events (the pool's Submit
// deliberately omits AdaptiveBatch from per-job drivers, because
// pool-level parking absorbs the idle signal the controller shrinks on).
func TestAdaptiveInPoolCapability(t *testing.T) {
	managers := []rundown.ExecManager{
		rundown.SerialManager, rundown.ShardedManager, rundown.AsyncManager,
	}
	models := []rundown.MgmtModel{
		rundown.StealsWorker, rundown.Dedicated, rundown.ShardedMgmt,
		rundown.AdaptiveMgmt, rundown.AsyncMgmt,
	}
	for _, m := range managers {
		for _, mm := range models {
			if caps := rundown.Capabilities(m, mm); caps.AdaptiveInPool {
				t.Errorf("Capabilities(%v, %v).AdaptiveInPool = true, want false for every pairing", m, mm)
			}
		}
	}

	// Behavioural pin: adaptive batching requested, pool backend, traced —
	// the trace must carry no retune events.
	progA, optA := traceChainFine(t, 512)
	progB, optB := traceChainFine(t, 512)
	r, err := rundown.New(
		rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager),
		rundown.WithAdaptiveBatching(0),
		rundown.WithTrace(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll(context.Background(), []rundown.Job{
		{Name: "a", Prog: progA, Opt: optA},
		{Name: "b", Prog: progB, Opt: optB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no trace captured")
	}
	if n := rep.Trace.Count(trace.KRetune); n != 0 {
		t.Errorf("pool run under WithAdaptiveBatching recorded %d KRetune events, want 0 (AdaptiveInPool is false)", n)
	}
}

// TestPoolTraceAttributesJobs checks the tenant pool's recording: a
// two-job RunAll trace names both jobs in its meta and attributes every
// dispatch to a valid job index.
func TestPoolTraceAttributesJobs(t *testing.T) {
	progA, optA := traceChainFine(t, 512)
	progB, optB := traceChainFine(t, 256)
	r, err := rundown.New(
		rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager),
		rundown.WithTrace(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll(context.Background(), []rundown.Job{
		{Name: "alpha", Prog: progA, Opt: optA},
		{Name: "beta", Prog: progB, Opt: optB},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trace
	if tr == nil {
		t.Fatal("no trace captured")
	}
	if tr.Meta.Backend != "pool" || len(tr.Meta.Jobs) != 2 ||
		tr.Meta.Jobs[0] != "alpha" || tr.Meta.Jobs[1] != "beta" {
		t.Fatalf("pool trace meta = %+v, want backend=pool jobs=[alpha beta]", tr.Meta)
	}
	perJob := map[int32]int64{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KDispatch {
			if ev.Job < 0 || ev.Job > 1 {
				t.Fatalf("dispatch with job index %d", ev.Job)
			}
			perJob[ev.Job]++
		}
	}
	if perJob[0] == 0 || perJob[1] == 0 {
		t.Fatalf("per-job dispatch counts %v: both jobs must appear", perJob)
	}
	if got := tr.Granules(); got != int64(progA.TotalGranules()+progB.TotalGranules()) {
		t.Fatalf("pool trace completes %d granules, jobs total %d",
			got, progA.TotalGranules()+progB.TotalGranules())
	}
}
