// Quickstart: declare two identity-mapped phases with real work, run
// them through the rundown.Runner front door on goroutine workers with
// phase overlap, and compare against the strict barrier baseline. The
// same Job spec would run on the virtual machine by swapping the
// Runner's options for rundown.WithVirtualTime.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	rundown "repro"
)

const n = 1 << 16

func build(src, dst []float64) *rundown.Program {
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name:     "produce",
			Granules: n,
			Work: func(g rundown.GranuleID) {
				// A granule is a real unit of numerical work, not a
				// single flop — keep it big enough to dwarf dispatch.
				v := float64(g) + 1
				for i := 0; i < 64; i++ {
					v = math.Sqrt(v*v + 1)
				}
				src[g] = v
			},
			// Identity mapping: consume[i] needs exactly produce[i] —
			// the paper's most common case (41% of CASPER phases).
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name:     "consume",
			Granules: n,
			Work:     func(g rundown.GranuleID) { dst[g] = src[g]*2 + 1 },
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func main() {
	// One front door: the Runner is configured once and runs every job;
	// Run takes a context, so callers can cancel long computations.
	runner, err := rundown.New(rundown.WithWorkers(8))
	if err != nil {
		log.Fatal(err)
	}
	for _, overlap := range []bool{false, true} {
		src := make([]float64, n)
		dst := make([]float64, n)
		rep, err := runner.Run(context.Background(), rundown.Job{
			Name: "quickstart",
			Prog: build(src, dst),
			Opt: rundown.Options{
				Grain:   512,
				Overlap: overlap,
				Costs:   rundown.DefaultCosts(),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Check the result regardless of scheduling.
		for i := range dst {
			want := float64(i) + 1
			for j := 0; j < 64; j++ {
				want = math.Sqrt(want*want + 1)
			}
			if dst[i] != want*2+1 {
				log.Fatalf("dst[%d] = %v, want %v", i, dst[i], want*2+1)
			}
		}
		fmt.Printf("overlap=%-5v wall=%-12v tasks=%-4d utilization=%.2f compute:management=%.0f\n",
			overlap, rep.Wall, rep.Tasks, rep.Utilization, rep.MgmtRatio)
	}
	fmt.Println("results identical; overlapped run fills the rundown of the produce phase")
}
