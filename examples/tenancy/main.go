// Tenancy: run two jobs on one shared worker pool so that one job's
// rundown is filled by the other job's work.
//
// The "ragged" job is phase-structured with very uneven granule times and
// null barriers: at every phase tail most of its home workers have
// nothing left to do — the paper's computational rundown. The "steady"
// job is a long identity-mapped stream of small granules. The pool's
// overlap-first dispatch policy keeps each job's makespan close to
// running alone (home workers serve their own job first) while routing
// the ragged job's idle moments into steady-job work, which the pool
// report shows as backfill.
//
//	go run ./examples/tenancy
package main

import (
	"fmt"
	"log"
	"time"

	rundown "repro"
)

const (
	raggedPhases = 8
	raggedWidth  = 4
	steadyN      = 128
)

// buildRagged builds the rundown-heavy job: granule 0 of each phase is
// ~10x slower than the rest, so the phase tail idles most workers. The
// work sleeps rather than spins so the example behaves the same on a
// single-core host.
func buildRagged(out []int32) (*rundown.Program, error) {
	phases := make([]*rundown.Phase, raggedPhases)
	for p := 0; p < raggedPhases; p++ {
		p := p
		phases[p] = &rundown.Phase{
			Name:     fmt.Sprintf("ragged%d", p),
			Granules: raggedWidth,
			Work: func(g rundown.GranuleID) {
				d := time.Millisecond
				if g == 0 {
					d = 8 * time.Millisecond
				}
				time.Sleep(d)
				out[p*raggedWidth+int(g)]++
			},
		}
	}
	return rundown.NewProgram(phases...)
}

// buildSteady builds the filler: two identity-mapped phases of small
// sleeping granules, always dispatchable while it lasts.
func buildSteady(acc []int32) (*rundown.Program, error) {
	return rundown.NewProgram(
		&rundown.Phase{
			Name: "produce", Granules: steadyN,
			Work: func(g rundown.GranuleID) {
				time.Sleep(500 * time.Microsecond)
				acc[g] = int32(g)
			},
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "consume", Granules: steadyN,
			Work: func(g rundown.GranuleID) {
				time.Sleep(500 * time.Microsecond)
				acc[g] *= 2
			},
		},
	)
}

func main() {
	pool, err := rundown.NewPool(rundown.PoolConfig{
		Workers: 4,
		Manager: rundown.ShardedManager,
	})
	if err != nil {
		log.Fatal(err)
	}

	raggedOut := make([]int32, raggedPhases*raggedWidth)
	raggedProg, err := buildRagged(raggedOut)
	if err != nil {
		log.Fatal(err)
	}
	steadyAcc := make([]int32, steadyN)
	steadyProg, err := buildSteady(steadyAcc)
	if err != nil {
		log.Fatal(err)
	}

	ragged, err := pool.Submit(raggedProg, rundown.Options{
		Grain: 1, Costs: rundown.DefaultCosts(),
	}, rundown.PoolJobConfig{Name: "ragged", Priority: 1})
	if err != nil {
		log.Fatal(err)
	}
	steady, err := pool.Submit(steadyProg, rundown.Options{
		Grain: 4, Overlap: true, Costs: rundown.DefaultCosts(),
	}, rundown.PoolJobConfig{Name: "steady"})
	if err != nil {
		log.Fatal(err)
	}

	raggedRep, err := ragged.Wait()
	if err != nil {
		log.Fatal(err)
	}
	steadyRep, err := steady.Wait()
	if err != nil {
		log.Fatal(err)
	}
	poolRep, err := pool.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Check both results regardless of scheduling.
	for i, v := range raggedOut {
		if v != 1 {
			log.Fatalf("ragged granule %d ran %d times", i, v)
		}
	}
	for g, v := range steadyAcc {
		if v != int32(g)*2 {
			log.Fatalf("steady[%d] = %d, want %d", g, v, g*2)
		}
	}

	fmt.Printf("ragged: wall=%-12v tasks=%-5d backfill-received=%d\n",
		raggedRep.Wall, raggedRep.Tasks, ragged.BackfillTasks())
	fmt.Printf("steady: wall=%-12v tasks=%-5d backfill-received=%d\n",
		steadyRep.Wall, steadyRep.Tasks, steady.BackfillTasks())
	fmt.Printf("pool:   %v\n", poolRep)
	fmt.Println("both jobs correct; the steady job's backfill count is ragged-job rundown put to work")
}
