// Tenancy: run two jobs on one shared worker pool so that one job's
// rundown is filled by the other job's work — through the rundown.Runner
// front door: one RunAll call submits both jobs to the multi-tenant pool
// and returns a unified report with per-job outcomes and the pool's
// backfill accounting.
//
// The "ragged" job is phase-structured with very uneven granule times and
// null barriers: at every phase tail most of its home workers have
// nothing left to do — the paper's computational rundown. The "steady"
// job is a long identity-mapped stream of small granules. The pool's
// overlap-first dispatch policy keeps each job's makespan close to
// running alone (home workers serve their own job first) while routing
// the ragged job's idle moments into steady-job work, which the report
// shows as backfill.
//
//	go run ./examples/tenancy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	rundown "repro"
)

const (
	raggedPhases = 8
	raggedWidth  = 4
	steadyN      = 128
)

// buildRagged builds the rundown-heavy job: granule 0 of each phase is
// ~10x slower than the rest, so the phase tail idles most workers. The
// work sleeps rather than spins so the example behaves the same on a
// single-core host.
func buildRagged(out []int32) (*rundown.Program, error) {
	phases := make([]*rundown.Phase, raggedPhases)
	for p := 0; p < raggedPhases; p++ {
		p := p
		phases[p] = &rundown.Phase{
			Name:     fmt.Sprintf("ragged%d", p),
			Granules: raggedWidth,
			Work: func(g rundown.GranuleID) {
				d := time.Millisecond
				if g == 0 {
					d = 8 * time.Millisecond
				}
				time.Sleep(d)
				out[p*raggedWidth+int(g)]++
			},
		}
	}
	return rundown.NewProgram(phases...)
}

// buildSteady builds the filler: two identity-mapped phases of small
// sleeping granules, always dispatchable while it lasts.
func buildSteady(acc []int32) (*rundown.Program, error) {
	return rundown.NewProgram(
		&rundown.Phase{
			Name: "produce", Granules: steadyN,
			Work: func(g rundown.GranuleID) {
				time.Sleep(500 * time.Microsecond)
				acc[g] = int32(g)
			},
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "consume", Granules: steadyN,
			Work: func(g rundown.GranuleID) {
				time.Sleep(500 * time.Microsecond)
				acc[g] *= 2
			},
		},
	)
}

func main() {
	runner, err := rundown.New(
		rundown.WithWorkers(4),
		rundown.WithManager(rundown.ShardedManager),
	)
	if err != nil {
		log.Fatal(err)
	}

	raggedOut := make([]int32, raggedPhases*raggedWidth)
	raggedProg, err := buildRagged(raggedOut)
	if err != nil {
		log.Fatal(err)
	}
	steadyAcc := make([]int32, steadyN)
	steadyProg, err := buildSteady(steadyAcc)
	if err != nil {
		log.Fatal(err)
	}

	// RunAll shares one worker set between the jobs (the tenant pool
	// behind the front door); Priority orders the backfill.
	rep, err := runner.RunAll(context.Background(), []rundown.Job{
		{
			Name: "ragged", Prog: raggedProg, Priority: 1,
			Opt: rundown.Options{Grain: 1, Costs: rundown.DefaultCosts()},
		},
		{
			Name: "steady", Prog: steadyProg,
			Opt: rundown.Options{Grain: 4, Overlap: true, Costs: rundown.DefaultCosts()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Check both results regardless of scheduling.
	for i, v := range raggedOut {
		if v != 1 {
			log.Fatalf("ragged granule %d ran %d times", i, v)
		}
	}
	for g, v := range steadyAcc {
		if v != int32(g)*2 {
			log.Fatalf("steady[%d] = %d, want %d", g, v, g*2)
		}
	}

	for _, j := range rep.Jobs {
		fmt.Printf("%s: wall=%-12v tasks=%-5d backfill-received=%d\n",
			j.Name, j.Exec.Wall, j.Exec.Tasks, j.Backfill)
	}
	fmt.Printf("pool:   %v\n", rep.Pool)
	fmt.Println("both jobs correct; the steady job's backfill count is ragged-job rundown put to work")
}
