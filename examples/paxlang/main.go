// Paxlang: drive the scheduler from the control language the paper
// proposes. The source below uses the paper's own constructs — DEFINE
// PHASE with a define-time ENABLE list, DISPATCH with a branch-independent
// ENABLE clause, a conditional branch the executive preprocesses, and a
// loop — and the interpreter enforces the successor interlock while
// lowering the executed path into a runnable program.
//
//	go run ./examples/paxlang
package main

import (
	"fmt"
	"log"

	rundown "repro"
)

const source = `
! A CASPER-flavoured iteration: smooth, gather residuals, then either
! another smoothing pass or a final output pack depending on the sweep
! counter. The branch does not depend on the gather results, so the
! executive may preprocess it (ENABLE/BRANCHINDEPENDENT).

DEFINE PHASE smooth GRANULES 2048 COST 200 LINES 61 ENABLE [ gather/MAPPING=REVERSE ]
DEFINE PHASE gather GRANULES 512  COST 150 LINES 39
DEFINE PHASE pack   GRANULES 1024 COST 100 LINES 44

SET sweep = 0

top:
DISPATCH smooth
DISPATCH gather
  ENABLE/BRANCHINDEPENDENT
  [ smooth/MAPPING=UNIVERSAL
    pack/MAPPING=UNIVERSAL ]
SET sweep = sweep + 1
IF (sweep .LT. 3) THEN GO TO top
DISPATCH pack
`

func main() {
	file, err := rundown.ParsePax(source)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rundown.InterpretPax(file, &rundown.PaxRegistry{Seed: 42}, rundown.PaxOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("executed dispatch sequence (with resolved mappings):")
	for i, d := range res.Dispatches {
		status := "unverified"
		if d.Verified {
			status = "verified"
		}
		fmt.Printf("  %2d %-10s -> next via %-16v (%s)\n", i, d.Instance, d.Mapping, status)
	}

	for _, overlap := range []bool{false, true} {
		sim, err := rundown.Simulate(res.Program, rundown.Options{
			Overlap: overlap,
			Elevate: true,
			Costs:   rundown.DefaultCosts(),
		}, rundown.SimConfig{Procs: 24, Mgmt: rundown.StealsWorker})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\noverlap=%-5v makespan=%-8d utilization=%.1f%% idle=%d",
			overlap, sim.Makespan, 100*sim.Utilization, sim.IdleUnits)
	}
	fmt.Println()
}
