// Checkerboard: the paper's running example. First the worked arithmetic
// (1024x1024 grid on 1000 processors: 524 computations per processor, 288
// left over, 712 processors idle in the final wave), then a real red/black
// SOR solve on goroutines where the seam mapping — the stencil extension
// the paper forecasts — overlaps the colour phases, with bit-identical
// results to the serial solver.
//
//	go run ./examples/checkerboard
package main

import (
	"fmt"
	"log"

	rundown "repro"
)

func main() {
	// Part 1: the paper's rundown arithmetic, exactly.
	ic, err := rundown.NewIdealCheckerboard(1024)
	if err != nil {
		log.Fatal(err)
	}
	each, left, idle := ic.Leftover(1000)
	fmt.Printf("1024x1024 grid: %d computations per phase\n", ic.PhaseGranules())
	fmt.Printf("on 1000 processors: %d each, %d left over -> %d processors idle in the final wave\n\n",
		each, left, idle)

	// Part 2: a real SOR solve, barrier vs seam overlap.
	const n, sweeps = 64, 8
	ref, err := rundown.NewGrid(n, 1.5, rundown.HotEdgeBoundary(n))
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < sweeps; s++ {
		ref.SerialSweep(0)
		ref.SerialSweep(1)
	}

	for _, seam := range []bool{false, true} {
		g, err := rundown.NewGrid(n, 1.5, rundown.HotEdgeBoundary(n))
		if err != nil {
			log.Fatal(err)
		}
		prog, err := g.SORProgram(sweeps, seam)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := rundown.Execute(prog, rundown.Options{
			Grain:   64,
			Overlap: true,
			Costs:   rundown.DefaultCosts(),
		}, rundown.ExecConfig{Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		exact := true
		for p := range ref.Phi {
			if g.Phi[p] != ref.Phi[p] {
				exact = false
				break
			}
		}
		fmt.Printf("seam=%-5v wall=%-12v tasks=%-4d residual=%.3e bit-identical-to-serial=%v\n",
			seam, rep.Wall, rep.Tasks, g.Residual(), exact)
	}
	fmt.Println("\nthe seam mapping releases each point of the next colour as soon as its")
	fmt.Println("four neighbours are relaxed — the overlap the paper deferred as future work")
}
