// Service: rundown-as-a-service end to end, in one process. The example
// starts the rundownd service core (internal/service) on a loopback
// listener, then talks to it exclusively over HTTP/JSON the way any
// external client would: submit a batch job, poll it to completion and
// print its report; submit a latency-class job against the quiet pool
// and watch it be admitted; then read the per-class counters off the
// Prometheus scrape and drain the daemon.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// jobStatus mirrors the daemon's job-status wire form — the fields a
// client needs, decoded from plain JSON like any external consumer.
type jobStatus struct {
	ID    string  `json:"id"`
	Name  string  `json:"name"`
	State string  `json:"state"`
	Tasks int64   `json:"tasks"`
	Error string  `json:"error"`
	Rep   *report `json:"report"`
}

type report struct {
	Backfill  int64 `json:"backfill"`
	Attempts  int   `json:"attempts"`
	QueueWait int64 `json:"queue_wait_ns"`
	Exec      *struct {
		WallNS      int64   `json:"wall_ns"`
		Tasks       int64   `json:"tasks"`
		Utilization float64 `json:"utilization"`
	} `json:"exec"`
}

func main() {
	// The daemon core, exactly as cmd/rundownd runs it: one hot pool.
	s, err := service.New(service.Config{Workers: 4, SamplePeriod: 50 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("rundownd serving at %s\n\n", base)

	// A batch job: two identity-mapped phases of real busy-spin work.
	batch := map[string]any{
		"name": "nightly-etl",
		"workload": map[string]any{
			"kind": "chain", "mapping": "identity",
			"phases": 2, "granules": 128, "work_us": 200, "seed": 7,
		},
		"class": "batch",
	}
	id := submit(base, batch)
	fmt.Printf("submitted %q as %s\n", batch["name"], id)
	final := poll(base, id)
	fmt.Printf("  state=%s tasks=%d", final.State, final.Tasks)
	if r := final.Rep; r != nil && r.Exec != nil {
		fmt.Printf(" wall=%v util=%.3f attempts=%d backfill=%d",
			time.Duration(r.Exec.WallNS), r.Exec.Utilization, r.Attempts, r.Backfill)
	}
	fmt.Println()

	// A latency-class job on the now-quiet pool: the admission predicate
	// projects near-zero slowdown and admits it. (Submit the same spec
	// while a co-tenant queues behind admission control and the daemon
	// answers 429 with the structured projection instead.)
	latency := map[string]any{
		"name": "interactive-query",
		"workload": map[string]any{
			"kind": "chain", "mapping": "identity",
			"phases": 2, "granules": 64, "work_us": 100, "seed": 9,
		},
		"class": "latency", "tolerance_pct": 25,
	}
	id = submit(base, latency)
	fmt.Printf("submitted %q as %s (latency class, tolerance 25%%)\n", latency["name"], id)
	final = poll(base, id)
	fmt.Printf("  state=%s tasks=%d\n\n", final.State, final.Tasks)

	// The per-class counters are on the ordinary Prometheus scrape.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("per-class metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "rundown_class_") {
			fmt.Println("  " + line)
		}
	}

	// Graceful drain, the SIGTERM path.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	srv.Shutdown(ctx)
	fmt.Println("\ndrained cleanly")
}

// submit POSTs a job spec and returns the assigned ID.
func submit(base string, spec map[string]any) string {
	b, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st.ID
}

// poll fetches the job's status until it reaches a terminal state.
func poll(base, id string) jobStatus {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}
