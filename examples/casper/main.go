// Casper: the mini-CFD pipeline that exercises every enablement-mapping
// kind of the paper with real arithmetic — universal (power-compression to
// interpolator-matrix, the paper's own example), identity, reverse
// indirect (gather), a serial decision forcing a null mapping, and forward
// indirect (scatter). The overlapped parallel run must match the serial
// reference bit for bit. The example also classifies each adjacent phase
// pair from its access footprints alone and prints the resulting census.
//
//	go run ./examples/casper
package main

import (
	"fmt"
	"log"

	rundown "repro"
)

func main() {
	const n = 4096

	ref, err := rundown.NewPipeline(n)
	if err != nil {
		log.Fatal(err)
	}
	ref.RunSerial()

	par, _ := rundown.NewPipeline(n)
	prog, err := par.Program()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rundown.Execute(prog, rundown.Options{
		Grain:   128,
		Overlap: true,
		Elevate: true,
		Costs:   rundown.DefaultCosts(),
	}, rundown.ExecConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	for i := range ref.Out {
		if par.Out[i] != ref.Out[i] {
			log.Fatalf("out[%d] = %v, want %v", i, par.Out[i], ref.Out[i])
		}
	}
	fmt.Printf("pipeline over %d points: wall=%v tasks=%d, parallel result bit-identical to serial\n\n",
		n, rep.Wall, rep.Tasks)

	// Classify every adjacent phase pair from footprints alone and show
	// the declared mapping next to it.
	small, _ := rundown.NewPipeline(64)
	sprog, _ := small.Program()
	fps := small.Footprints()
	fmt.Println("phase-pair classification (inferred from access footprints):")
	for i := 0; i < len(sprog.Phases)-1; i++ {
		kind, m := rundown.Infer(fps[i], sprog.Phases[i].Granules, fps[i+1], sprog.Phases[i+1].Granules)
		declared := sprog.Phases[i].EnableKind()
		if err := rundown.Verify(m, fps[i], sprog.Phases[i].Granules, fps[i+1], sprog.Phases[i+1].Granules); err != nil {
			log.Fatalf("inferred mapping fails verification: %v", err)
		}
		note := ""
		if declared != kind {
			note = "  (serial decision between the phases forces null)"
		}
		fmt.Printf("  %-20s -> %-16s inferred=%-17v declared=%v%s\n",
			sprog.Phases[i].Name, sprog.Phases[i+1].Name, kind, declared, note)
	}

	// The paper's published CASPER census for comparison.
	fmt.Println("\nPAX/CASPER census (paper, 22 phases / 1188 parallel lines):")
	counts := map[rundown.MappingKind]int{}
	for _, c := range rundown.Census() {
		counts[c.Kind]++
	}
	for _, k := range []rundown.MappingKind{
		rundown.KindUniversal, rundown.KindIdentity, rundown.KindNull,
		rundown.KindReverse, rundown.KindForward,
	} {
		fmt.Printf("  %-17v %d phases\n", k, counts[k])
	}
}
