package rundown

import (
	"context"

	"repro/internal/casper"
	"repro/internal/core"
	"repro/internal/enable"
	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/granule"
	"repro/internal/paxlang"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core scheduling types.
type (
	// Phase describes one parallel computational phase: its granule
	// count, per-granule cost and work functions, optional serial action,
	// and the enablement mapping to the following phase.
	Phase = core.Phase
	// Program is an ordered sequence of phases.
	Program = core.Program
	// Options configures the overlap scheduler (grain, overlap on/off,
	// split policies, priority rules, management costs).
	Options = core.Options
	// Scheduler is the PAX-style phase-overlap scheduler state machine.
	Scheduler = core.Scheduler
	// Task is a contiguous granule run dispatched to a worker.
	Task = core.Task
	// Cost is an abstract amount of computation in management units.
	Cost = core.Cost
	// MgmtCosts prices the executive operations.
	MgmtCosts = core.MgmtCosts
	// Stats counts scheduler management operations.
	Stats = core.Stats
	// GranuleID identifies a granule within a phase.
	GranuleID = granule.ID
	// PhaseID identifies a phase within a program.
	PhaseID = granule.PhaseID
	// CostFn gives a granule's virtual execution cost.
	CostFn = core.CostFn
	// WorkFn performs a granule's real computation.
	WorkFn = core.WorkFn
)

// Scheduler policy options.
const (
	// SplitDemand splits descriptions when an idle worker appears.
	SplitDemand = core.SplitDemand
	// SplitPre splits descriptions at phase activation.
	SplitPre = core.SplitPre
	// SuccSplitInline splits queued successor descriptions on the
	// dispatch path.
	SuccSplitInline = core.SuccSplitInline
	// SuccSplitDeferred queues successor splitting for executive idle time.
	SuccSplitDeferred = core.SuccSplitDeferred
	// IdentityConflictQueue implements identity overlap with PAX conflict
	// queues.
	IdentityConflictQueue = core.IdentityConflictQueue
	// IdentityTable implements identity overlap with enablement counters.
	IdentityTable = core.IdentityTable
)

// Enablement mapping types.
type (
	// Mapping declares the enablement relation between adjacent phases.
	Mapping = enable.Spec
	// MappingKind identifies a mapping form (universal, identity, ...).
	MappingKind = enable.Kind
	// Footprint declares a granule's shared-data accesses.
	Footprint = enable.Footprint
	// Effect names one shared array element access.
	Effect = enable.Effect
	// AccessFn returns a granule's footprint.
	AccessFn = enable.AccessFn
)

// Mapping kinds.
const (
	// KindNull permits no overlap.
	KindNull = enable.Null
	// KindUniversal permits total overlap.
	KindUniversal = enable.Universal
	// KindIdentity enables successor granule i when current granule i
	// completes.
	KindIdentity = enable.Identity
	// KindForward enables successor IMAP(p) when current p completes.
	KindForward = enable.ForwardIndirect
	// KindReverse enables successor r when all of Requires(r) complete.
	KindReverse = enable.ReverseIndirect
	// KindSeam is the structured stencil (checkerboard) mapping.
	KindSeam = enable.Seam
)

// Mapping constructors.
var (
	// Null declares that no overlap is possible.
	Null = enable.NewNull
	// Universal declares total phase independence.
	Universal = enable.NewUniversal
	// Identity declares the direct mapping I = I.
	Identity = enable.NewIdentity
	// Forward declares a forward indirect mapping from a function.
	Forward = enable.NewForward
	// ForwardIMAP declares a forward indirect mapping from an IMAP array.
	ForwardIMAP = enable.NewForwardIMAP
	// Reverse declares a reverse indirect mapping from a requirements
	// function.
	Reverse = enable.NewReverse
	// ReverseIMAP declares a reverse indirect mapping from an IMAP array
	// with a fixed fan.
	ReverseIMAP = enable.NewReverseIMAP
	// Seam declares a stencil-neighbour mapping.
	Seam = enable.NewSeam
)

// NewProgram builds and validates a program.
func NewProgram(phases ...*Phase) (*Program, error) { return core.NewProgram(phases...) }

// NewScheduler builds a scheduler for driving manually (most callers use
// Simulate or Execute instead).
func NewScheduler(p *Program, opt Options) (*Scheduler, error) { return core.New(p, opt) }

// DefaultCosts returns the reference management cost calibration.
func DefaultCosts() MgmtCosts { return core.DefaultCosts() }

// FreeCosts returns a zero-cost management model for policy studies.
func FreeCosts() MgmtCosts { return core.FreeCosts() }

// Simulation.
type (
	// SimConfig parameterizes the discrete-event machine model.
	SimConfig = sim.Config
	// SimResult aggregates a simulation run.
	SimResult = sim.Result
	// PhaseTrace records one phase's schedule within a run.
	PhaseTrace = sim.PhaseTrace
	// MgmtModel selects where executive computation runs.
	MgmtModel = sim.MgmtModel
	// SimSnapshot is the virtual backend's native snapshot type
	// (SimConfig.Observer); Runner observers receive the unified
	// Snapshot instead.
	SimSnapshot = sim.Snapshot
)

// Executive resource models.
const (
	// StealsWorker runs the executive on one of the P processors (the
	// paper's UNIVAC model).
	StealsWorker = sim.StealsWorker
	// Dedicated gives the executive its own processor.
	Dedicated = sim.Dedicated
	// ShardedMgmt distributes executive computation across the workers:
	// each processor pays its own management costs inline, concurrently —
	// the virtual-time price of a parallel (sharded) manager.
	ShardedMgmt = sim.Sharded
	// AdaptiveMgmt is the batched-executive model — the virtual-time
	// price of the deque-based sharded manager: worker-local task
	// buffers pop for free, every refill or completion flush is one
	// serialized lock visit charging MgmtCosts.Acquire, and the batch
	// size is fixed (SimConfig.Batch) or retuned online from the
	// observed overhead and starvation shares (Options.AdaptiveBatch).
	AdaptiveMgmt = sim.Adaptive
	// AsyncMgmt is the Dedicated model extended with the async
	// executive's ready-buffer protocol — the virtual-time price of
	// AsyncManager: a separate executive processor keeps a bounded
	// ready-buffer (SimConfig.ReadyCap) topped up, workers pop it for
	// free and queue completions back without waiting, and deferred
	// management overlaps computation above SimConfig.LowWater.
	AsyncMgmt = sim.Async
)

// Simulate runs prog on the deterministic discrete-event machine model.
// It is a thin wrapper over the Runner front door:
// New(WithVirtualTime(cfg)) then Run. Use a Runner directly for
// cancellation and the unified Report.
func Simulate(prog *Program, opt Options, cfg SimConfig) (*SimResult, error) {
	r, err := New(WithVirtualTime(cfg))
	if err != nil {
		return nil, err
	}
	rep, err := r.Run(context.Background(), Job{Prog: prog, Opt: opt})
	if err != nil {
		return nil, err
	}
	return rep.Sim, nil
}

// Multi-program simulation (virtual-time tenancy).
type (
	// SimJob describes one job of a multi-program simulation.
	SimJob = sim.JobSpec
	// MultiSimResult aggregates a multi-program simulation, with per-job
	// makespans and cross-job backfill units.
	MultiSimResult = sim.MultiResult
	// SimJobResult is one job's outcome within a multi-program run.
	SimJobResult = sim.JobResult
)

// ErrUnsupportedMgmt reports a management model a simulation mode cannot
// price. Every current model prices multi-program runs (SupportsMulti
// accepts them all, AdaptiveMgmt and AsyncMgmt included), so only an
// unknown or future model trips it. Test with errors.Is — or avoid
// tripping it at all by consulting Capabilities(manager,
// model).VirtualMulti before running.
var ErrUnsupportedMgmt = sim.ErrUnsupportedMgmt

// SimulateMulti runs several jobs sharing one simulated machine under the
// tenant pool's overlap-first dispatch policy: each worker serves its home
// job while anything there is dispatchable and backfills the other jobs
// (priority first, then deficit-round-robin credit) during its home job's
// rundown. Deterministic, like Simulate. It is a thin wrapper over
// New(WithVirtualTime(cfg)) then RunAll.
func SimulateMulti(jobs []SimJob, cfg SimConfig) (*MultiSimResult, error) {
	r, err := New(WithVirtualTime(cfg))
	if err != nil {
		return nil, err
	}
	rjobs := make([]Job, len(jobs))
	for i, j := range jobs {
		rjobs[i] = Job{Name: j.Name, Prog: j.Prog, Opt: j.Opt, Priority: j.Priority, Weight: j.Weight}
	}
	rep, err := r.RunAll(context.Background(), rjobs)
	if err != nil {
		return nil, err
	}
	return rep.SimMulti, nil
}

// Flight-recorder traces (WithTrace).
type (
	// Trace is a run's merged flight-recorder trace: the run description
	// (TraceMeta) plus every scheduling event in (Time, Seq) order.
	Trace = trace.Trace
	// TraceEvent is one recorded scheduling decision.
	TraceEvent = trace.Event
	// TraceMeta describes the machine that produced a trace.
	TraceMeta = trace.Meta
	// TraceDiff reports the comparison of two traces: first divergence,
	// if any, plus per-phase busy and utilization deltas.
	TraceDiff = trace.DiffResult
	// ReplayResult reports a deterministic trace replay (ReplayTrace):
	// the replayed makespan and the conservation checks.
	ReplayResult = sim.ReplayResult
	// TraceRecorder is a caller-owned flight recorder for long-lived
	// pools (WithTraceRecorder): Take returns the merged trace so far,
	// safe to call while the pool records.
	TraceRecorder = trace.Recorder
)

// NewTraceRecorder builds a caller-owned flight recorder sized for
// `workers` worker rings, for WithTraceRecorder + StartPool. Take the
// merged trace at any time; Trace.FilterJob carves out one job's
// schedule by its PoolJob.Index.
func NewTraceRecorder(workers int) *TraceRecorder {
	if workers < 1 {
		workers = 1
	}
	return trace.NewRecorder(trace.Meta{}, workers)
}

// Unified telemetry (WithMetrics).
type (
	// MetricsRegistry is the deterministic metrics registry behind
	// WithMetrics: per-worker sharded counters, gauges, and log-linear
	// latency histograms. Its Handler method serves the Prometheus text
	// format, Publish mirrors it into expvar, and Dump exports the
	// deterministic sorted form attached to Report.Metrics. Pass one to
	// WithMetricsRegistry to keep a live registry across runs.
	MetricsRegistry = telemetry.Registry
	// MetricsDump is a registry's point-in-time export (Report.Metrics):
	// every metric sorted by name, histogram buckets in bound order.
	// Identical virtual runs marshal to identical JSON.
	MetricsDump = telemetry.Dump
	// MetricDump is one metric's exported state within a MetricsDump.
	MetricDump = telemetry.MetricDump
)

// NewMetricsRegistry builds a caller-owned metrics registry for
// WithMetricsRegistry: counters shard across `shards` worker cells
// (use the worker count; minimum 1), and timeUnit labels the dump's
// time base — "ns" for real backends, "virtual" for the simulator
// (empty selects "ns").
func NewMetricsRegistry(shards int, timeUnit string) *MetricsRegistry {
	return telemetry.NewRegistry(shards, timeUnit)
}

// FormatMetrics renders a metrics dump as the human-readable table
// rundownsim -metrics prints: one line per metric, histograms
// summarized as count/sum/min/p50/p99/max.
func FormatMetrics(d *MetricsDump) string { return telemetry.FormatDump(d) }

// ReadTraceFile loads a binary trace written by WithTrace or
// WriteTraceFile, verifying the format version and checksum.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// WriteTraceFile writes t in the versioned binary trace format.
func WriteTraceFile(path string, t *Trace) error { return trace.WriteFile(path, t) }

// DiffTraces aligns two traces event by event and reports the first
// divergence plus per-phase utilization deltas. Two virtual traces
// compare exactly (timestamps included); anything else compares
// structurally (kind, processor, job, phase, granule range), so a
// goroutine run can be checked against a virtual rehearsal of the same
// program.
func DiffTraces(a, b *Trace) *TraceDiff { return trace.Diff(a, b) }

// ReplayTrace re-executes a recorded trace in the virtual machine as a
// pinned schedule: every dispatch is bound to the processor the trace
// recorded, in the trace's order, and the replay verifies conservation —
// granule totals per phase, completion-order validity against a real
// scheduler, full program completion. The trace may come from any
// backend; the replayed timeline is virtual.
func ReplayTrace(prog *Program, opt Options, t *Trace) (*ReplayResult, error) {
	return sim.Replay(prog, opt, t)
}

// Execution on goroutines.
type (
	// ExecConfig parameterizes the goroutine executive: worker count,
	// manager selection (ExecConfig.Manager), and the sharded manager's
	// deque capacity and completion batch size.
	ExecConfig = executive.Config
	// ExecReport aggregates a goroutine run's measurements.
	ExecReport = executive.Report
	// ExecManager selects the executive's management layer.
	ExecManager = executive.ManagerKind
	// ExecSnapshot is the goroutine executive's native snapshot type
	// (ExecConfig.Observer); Runner observers receive the unified
	// Snapshot instead.
	ExecSnapshot = executive.Snapshot
)

// Executive managers.
const (
	// SerialManager serializes every scheduler interaction under one
	// global lock — the paper's serial executive, kept as the baseline.
	SerialManager = executive.SerialManager
	// ShardedManager gives each worker a bounded local task deque with
	// batched completion submission and work stealing between shards.
	ShardedManager = executive.ShardedManager
	// AsyncManager runs all management on one dedicated background
	// goroutine — the paper's separate executive processor realized on
	// hardware: workers pull from a bounded ready-buffer
	// (ExecConfig.ReadyCap) and push completions into a lock-free MPSC
	// queue, never touching the state-machine lock.
	AsyncManager = executive.AsyncManager
)

// ParseExecManager parses a manager name ("serial", "sharded" or
// "async"), case-insensitively; the error enumerates the valid names.
func ParseExecManager(s string) (ExecManager, error) { return executive.ParseManager(s) }

// ExecManagerNames lists the accepted ParseExecManager names.
func ExecManagerNames() []string { return executive.ManagerNames() }

// ParseMappingKind resolves an enablement-mapping name ("null",
// "universal", "identity", "forward-indirect", "reverse-indirect",
// "seam", plus the short and upper-case spellings PAX sources use).
func ParseMappingKind(s string) (MappingKind, error) { return enable.ParseKind(s) }

// ParseMgmtModel parses a simulation management-model name
// ("steals-worker", "dedicated", "sharded", "adaptive" or "async"),
// case-insensitively; the error enumerates the valid names.
func ParseMgmtModel(s string) (MgmtModel, error) { return sim.ParseModel(s) }

// MgmtModelNames lists the accepted ParseMgmtModel names.
func MgmtModelNames() []string { return sim.ModelNames() }

// Execute runs prog's Work functions on real goroutine workers under the
// configured manager (SerialManager by default). It is a thin wrapper
// over the Runner front door: New with the matching options, then Run.
// Use a Runner directly for cancellation and the unified Report.
func Execute(prog *Program, opt Options, cfg ExecConfig) (*ExecReport, error) {
	r, err := New(execConfigOptions(cfg)...)
	if err != nil {
		return nil, err
	}
	rep, err := r.Run(context.Background(), Job{Prog: prog, Opt: opt})
	if err != nil {
		return nil, err
	}
	return rep.Exec, nil
}

// managerKnobOptions converts the worker/manager knobs both legacy
// config structs share (ExecConfig and PoolConfig carry the same six
// fields) into Runner options — one conversion point, so a knob added
// to the configs cannot be threaded for one wrapper and dropped for the
// other.
func managerKnobOptions(workers int, manager ExecManager, dequeCap, batch, readyCap, lowWater int) []Option {
	return []Option{
		WithWorkers(workers), WithManager(manager),
		WithDequeCap(dequeCap), WithBatch(batch),
		WithReadyCap(readyCap), WithLowWater(lowWater),
	}
}

// execConfigOptions converts a legacy ExecConfig into Runner options.
func execConfigOptions(cfg ExecConfig) []Option {
	opts := managerKnobOptions(cfg.Workers, cfg.Manager, cfg.DequeCap, cfg.Batch, cfg.ReadyCap, cfg.LowWater)
	if cfg.Adaptive {
		opts = append(opts, WithAdaptiveBatching(cfg.MgmtTarget))
	}
	if cfg.Faults != nil {
		opts = append(opts, WithFaults(*cfg.Faults))
	}
	if cfg.Observer != nil {
		// Legacy observers expect the executive's native snapshots; pass
		// them through unadapted.
		opts = append(opts, withExecObserver(cfg.Observer, cfg.ObservePeriod))
	}
	return opts
}

// Multi-tenant execution: several programs sharing one goroutine worker
// pool, one job's rundown filled by another job's work.
type (
	// PoolConfig parameterizes a shared worker pool: worker count plus
	// the per-job manager selection (every job gets its own Manager of
	// the configured kind wrapped around its own scheduler).
	PoolConfig = tenant.Config
	// Pool is the shared worker pool. Submit adds jobs; Close waits for
	// them and returns the pool report.
	Pool = tenant.Pool
	// PoolJobConfig names a submitted job and sets its backfill priority
	// and its weight (home-worker share and backfill credit).
	PoolJobConfig = tenant.JobConfig
	// PoolJob is the handle of a submitted job; Wait returns its
	// ExecReport.
	PoolJob = tenant.Job
	// PoolReport aggregates a pool's lifetime: utilization, idle time,
	// and the cross-job backfill that filled rundowns.
	PoolReport = tenant.Report
	// PoolSnapshot is the pool's native snapshot type
	// (PoolConfig.Observer); Runner observers receive the unified
	// Snapshot instead.
	PoolSnapshot = tenant.Snapshot
	// AdmitFunc is a caller-defined admission predicate (WithAdmitFunc):
	// consulted by Submit under the pool lock, a non-nil return rejects
	// the job. The error is wrapped with the job name, so sentinel and
	// errors.As targets survive to the submitter.
	AdmitFunc = tenant.AdmitFunc
	// AdmissionView is the consistent pool-load snapshot an AdmitFunc
	// receives: active/queued job counts and the measured backfill
	// interference bounds.
	AdmissionView = tenant.AdmissionView
)

// NewPool starts a multi-tenant worker pool. Jobs submitted to it run
// concurrently under an overlap-first dispatch policy: every worker
// serves its home job exclusively while anything there is dispatchable,
// and backfills the other jobs — priority first, then
// deficit-round-robin fairness — only during its home job's rundown.
// It is a thin wrapper over the Runner front door: New with the matching
// options, then StartPool. RunAll on a pool-backed Runner covers the
// common submit-everything-and-wait case without the explicit lifecycle.
func NewPool(cfg PoolConfig) (*Pool, error) {
	opts := append(managerKnobOptions(cfg.Workers, cfg.Manager, cfg.DequeCap, cfg.Batch, cfg.ReadyCap, cfg.LowWater),
		WithPool())
	if cfg.Faults != nil {
		opts = append(opts, WithFaults(*cfg.Faults))
	}
	if cfg.MaxActive > 0 {
		opts = append(opts, WithAdmission(cfg.MaxActive, cfg.Queue))
	}
	if cfg.PreemptBound > 0 {
		opts = append(opts, WithPreemptBound(cfg.PreemptBound))
	}
	if cfg.StallTimeout != 0 {
		opts = append(opts, WithStallTimeout(cfg.StallTimeout))
	}
	if cfg.Observer != nil {
		opts = append(opts, withPoolObserver(cfg.Observer, cfg.ObservePeriod))
	}
	r, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return r.StartPool()
}

// Deterministic fault injection (WithFaults).
type (
	// FaultSpec is a compiled-on-use fault plan description: a seed (for
	// reporting) plus the rules to fire. The same spec produces the same
	// faults on every backend — priced deterministically in virtual time,
	// bounded wall-clock effects on real goroutines.
	FaultSpec = fault.Spec
	// FaultRule matches one injection site (kind, job, phase, granule,
	// worker) and carries its parameters (delay, factor, firing count).
	// Match fields use -1 for "any"; zero means index 0.
	FaultRule = fault.Rule
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
)

// Fault kinds.
const (
	// FaultGrainPanic panics the matched granule's work function.
	FaultGrainPanic = fault.GrainPanic
	// FaultGrainError fails the matched granule's task with an injected
	// error.
	FaultGrainError = fault.GrainError
	// FaultGrainStall withholds the matched task's completion for
	// Rule.Delay units.
	FaultGrainStall = fault.GrainStall
	// FaultGrainSlow stretches the matched task's compute by
	// ×Rule.Factor.
	FaultGrainSlow = fault.GrainSlow
	// FaultWorkerCrash retires the matched worker after the task in hand.
	FaultWorkerCrash = fault.WorkerCrash
	// FaultWorkerWedge withholds the matched worker's next completion —
	// only a stall probe or deadline can fail the wedged job.
	FaultWorkerWedge = fault.WorkerWedge
	// FaultWorkerSlow stretches every task the matched worker runs.
	FaultWorkerSlow = fault.WorkerSlow
	// FaultMgmtDelay delays the matched job's next completion submission
	// to management.
	FaultMgmtDelay = fault.MgmtDelay
	// FaultDropWakeup makes the next wakeup of parked workers vanish;
	// the engines must recover on their own probes.
	FaultDropWakeup = fault.DropWakeup
)

// FaultScenario derives a reproducible n-rule fault campaign from a seed,
// sized to a machine of the given shape (jobs × phases × granules on
// workers). Identical arguments produce identical specs on every host —
// the chaos sweep's generator.
func FaultScenario(seed uint64, n, jobs, phases, granules, workers int) FaultSpec {
	return fault.Scenario(seed, n, jobs, phases, granules, workers)
}

// ParseFaultFlag parses a "seed=N[,rules=K]" fault-campaign flag value
// (the rundownsim -faults syntax) into its seed and rule count.
func ParseFaultFlag(s string) (seed uint64, rules int, err error) {
	return fault.ParseFlag(s)
}

// ParseFaultKind resolves a fault kind's string name ("grain-panic",
// "worker-wedge", …) — the same names FaultKind marshals to in JSON.
func ParseFaultKind(s string) (FaultKind, error) { return fault.ParseKind(s) }

// Tenancy sentinels. Test with errors.Is; Submit wraps both with the
// offending job's name.
var (
	// ErrPoolClosed reports a Submit after Close or Abort.
	ErrPoolClosed = tenant.ErrPoolClosed
	// ErrPoolSaturated reports a Submit refused by admission control
	// (WithAdmission's high-water mark, queueing off).
	ErrPoolSaturated = tenant.ErrPoolSaturated
)

// Verification and inference over access footprints.

// Parallel is the paper's logical predicate PARALLEL(x, y) over declared
// footprints.
func Parallel(x, y Footprint) bool { return enable.Parallel(x, y) }

// Verify checks a declared mapping against the paper's overlap-correctness
// condition (exhaustive; use reduced sizes).
func Verify(m *Mapping, pred AccessFn, nPred int, succ AccessFn, nSucc int) error {
	return enable.Verify(m, pred, nPred, succ, nSucc)
}

// Infer classifies a phase pair's enablement relation from footprints,
// returning the simplest sound mapping.
func Infer(pred AccessFn, nPred int, succ AccessFn, nSucc int) (MappingKind, *Mapping) {
	return enable.Infer(pred, nPred, succ, nSucc)
}

// PAX language.
type (
	// PaxFile is a parsed PAX-language source.
	PaxFile = paxlang.File
	// PaxRegistry binds phase names to Go implementations.
	PaxRegistry = paxlang.Registry
	// PaxResult is an interpreted program plus its dispatch log.
	PaxResult = paxlang.Result
	// PaxOptions bounds interpretation.
	PaxOptions = paxlang.Options
	// PaxPhaseImpl is one phase's Go-side behaviour.
	PaxPhaseImpl = paxlang.PhaseImpl
)

// ParsePax parses PAX-language source.
func ParsePax(src string) (*PaxFile, error) { return paxlang.Parse(src) }

// CheckPax statically checks a parsed source.
func CheckPax(f *PaxFile) error { return paxlang.Check(f) }

// InterpretPax executes the control program into a runnable Program,
// enforcing the paper's successor interlock.
func InterpretPax(f *PaxFile, reg *PaxRegistry, opt PaxOptions) (*PaxResult, error) {
	return paxlang.Interpret(f, reg, opt)
}

// Workloads.
type (
	// CasperPhase is one entry of the PAX/CASPER phase census.
	CasperPhase = workload.CasperPhase
	// CasperConfig materializes the census into a program.
	CasperConfig = workload.CasperConfig
	// Pipeline is the mini-CFD numeric pipeline exercising every mapping.
	Pipeline = casper.Pipeline
	// Grid is the red/black SOR potential grid.
	Grid = casper.Grid
	// IdealCheckerboard is the paper's idealized checkerboard arithmetic.
	IdealCheckerboard = casper.IdealCheckerboard
)

// Census returns the paper's 22-phase PAX/CASPER mapping census.
func Census() []CasperPhase { return workload.Census() }

// CasperProgram materializes the census into a runnable program.
func CasperProgram(cfg CasperConfig) (*Program, error) { return workload.CasperProgram(cfg) }

// Chain builds a linear program with one mapping kind between phases.
func Chain(kind MappingKind, phases, granules int, cost CostFn, seed uint64) (*Program, error) {
	return workload.Chain(kind, phases, granules, cost, seed)
}

// Cost models.
var (
	// UnitCost charges one unit per granule.
	UnitCost = workload.UnitCost
	// FixedCost charges a constant per granule.
	FixedCost = workload.FixedCost
	// UniformCost charges a deterministic pseudo-random cost in [lo, hi].
	UniformCost = workload.UniformCost
	// BimodalCost mixes fast and slow granules.
	BimodalCost = workload.BimodalCost
	// ConditionalSkip models conditionally-skipped computations.
	ConditionalSkip = workload.ConditionalSkip
)

// NewPipeline allocates the mini-CFD pipeline over n points.
func NewPipeline(n int) (*Pipeline, error) { return casper.NewPipeline(n) }

// NewGrid builds an SOR potential grid.
func NewGrid(n int, omega float64, boundary func(i, j int) float64) (*Grid, error) {
	return casper.NewGrid(n, omega, boundary)
}

// HotEdgeBoundary is the canonical SOR test boundary condition.
func HotEdgeBoundary(n int) func(i, j int) float64 { return casper.HotEdgeBoundary(n) }

// NewIdealCheckerboard builds the paper's idealized checkerboard model.
func NewIdealCheckerboard(n int) (*IdealCheckerboard, error) {
	return casper.NewIdealCheckerboard(n)
}
