package rundown_test

import (
	"testing"

	rundown "repro"
)

// TestFacadeQuickstart exercises the package-level API the way the README
// quickstart does: declare two identity-mapped phases with real work, run
// them overlapped on goroutines, and check the results.
func TestFacadeQuickstart(t *testing.T) {
	const n = 1024
	src := make([]float64, n)
	dst := make([]float64, n)
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name: "produce", Granules: n,
			Work:   func(g rundown.GranuleID) { src[g] = float64(g) * 0.5 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "consume", Granules: n,
			Work: func(g rundown.GranuleID) { dst[g] = src[g] + 1 },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rundown.Execute(prog,
		rundown.Options{Grain: 32, Overlap: true, Costs: rundown.DefaultCosts()},
		rundown.ExecConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks == 0 {
		t.Error("no tasks recorded")
	}
	for i := range dst {
		if dst[i] != float64(i)*0.5+1 {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	prog, err := rundown.Chain(rundown.KindUniversal, 2, 64, rundown.UnitCost(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rundown.Simulate(prog,
		rundown.Options{Grain: 4, Overlap: true, Costs: rundown.FreeCosts()},
		rundown.SimConfig{Procs: 8, Mgmt: rundown.Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 16 { // 128 unit granules / 8 procs
		t.Errorf("makespan = %d, want 16", res.Makespan)
	}
}

func TestFacadeMappings(t *testing.T) {
	if rundown.Null().Kind != rundown.KindNull ||
		rundown.Universal().Kind != rundown.KindUniversal ||
		rundown.Identity().Kind != rundown.KindIdentity {
		t.Error("mapping constructors broken")
	}
	fwd := rundown.ForwardIMAP([]rundown.GranuleID{1, 0})
	if fwd.Kind != rundown.KindForward {
		t.Error("forward constructor broken")
	}
	rev := rundown.Reverse(func(r rundown.GranuleID) []rundown.GranuleID {
		return []rundown.GranuleID{r}
	})
	if rev.Kind != rundown.KindReverse {
		t.Error("reverse constructor broken")
	}
}

func TestFacadeVerifyInfer(t *testing.T) {
	pred := func(g rundown.GranuleID) rundown.Footprint {
		return rundown.Footprint{Writes: []rundown.Effect{{Var: "A", Idx: int(g)}}}
	}
	succ := func(g rundown.GranuleID) rundown.Footprint {
		return rundown.Footprint{
			Reads:  []rundown.Effect{{Var: "A", Idx: int(g)}},
			Writes: []rundown.Effect{{Var: "B", Idx: int(g)}},
		}
	}
	kind, m := rundown.Infer(pred, 8, succ, 8)
	if kind != rundown.KindIdentity {
		t.Fatalf("inferred %v", kind)
	}
	if err := rundown.Verify(m, pred, 8, succ, 8); err != nil {
		t.Fatal(err)
	}
	if err := rundown.Verify(rundown.Universal(), pred, 8, succ, 8); err == nil {
		t.Error("unsound universal accepted")
	}
	a := rundown.Footprint{Writes: []rundown.Effect{{Var: "X", Idx: 0}}}
	b := rundown.Footprint{Reads: []rundown.Effect{{Var: "X", Idx: 0}}}
	if rundown.Parallel(a, b) {
		t.Error("conflict not detected")
	}
}

func TestFacadePax(t *testing.T) {
	f, err := rundown.ParsePax(`
DEFINE PHASE a GRANULES 8 ENABLE [ b/MAPPING=IDENTITY ]
DEFINE PHASE b GRANULES 8
DISPATCH a
DISPATCH b
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rundown.CheckPax(f); err != nil {
		t.Fatal(err)
	}
	res, err := rundown.InterpretPax(f, &rundown.PaxRegistry{}, rundown.PaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Phases) != 2 {
		t.Fatalf("phases = %d", len(res.Program.Phases))
	}
	if _, err := rundown.Simulate(res.Program,
		rundown.Options{Grain: 2, Overlap: true, Costs: rundown.DefaultCosts()},
		rundown.SimConfig{Procs: 4, Mgmt: rundown.Dedicated}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCasper(t *testing.T) {
	if len(rundown.Census()) != 22 {
		t.Error("census size wrong")
	}
	prog, err := rundown.CasperProgram(rundown.CasperConfig{GranulesPerLine: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 22 {
		t.Error("casper program size wrong")
	}
	ic, err := rundown.NewIdealCheckerboard(1024)
	if err != nil {
		t.Fatal(err)
	}
	each, left, idle := ic.Leftover(1000)
	if each != 524 || left != 288 || idle != 712 {
		t.Errorf("paper arithmetic = %d/%d/%d", each, left, idle)
	}
	p, err := rundown.NewPipeline(64)
	if err != nil {
		t.Fatal(err)
	}
	p.RunSerial()
	g, err := rundown.NewGrid(8, 1.0, rundown.HotEdgeBoundary(8))
	if err != nil {
		t.Fatal(err)
	}
	if g.ColorCount(0)+g.ColorCount(1) != 36 {
		t.Error("grid interior wrong")
	}
}
