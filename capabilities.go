package rundown

import (
	"repro/internal/executive"
	"repro/internal/sim"
)

// Caps reports what a (manager, model) pairing supports, so callers can
// discover a backend's limits statically instead of tripping over
// ErrUnsupportedMgmt at run time. The answers are derived from the same
// predicates the backends enforce (sim.SupportsMulti gates RunMulti,
// executive.SupportsPool gates NewPoolDriver), so capability and
// behaviour cannot drift apart — a conformance test cross-checks them.
type Caps struct {
	// Manager and Model echo the pairing the capabilities describe.
	Manager ExecManager
	Model   MgmtModel
	// VirtualSingle: the virtual backend can price a single-program run
	// under Model (Simulate / VirtualBackend Run).
	VirtualSingle bool
	// VirtualMulti: the virtual backend can price a multi-program run
	// under Model (SimulateMulti / VirtualBackend RunAll). False means
	// those calls return an error wrapping ErrUnsupportedMgmt.
	VirtualMulti bool
	// RealMulti: Manager implements the PoolDriver surface, so the
	// tenant pool (NewPool / real-backend RunAll) can drive it.
	RealMulti bool
	// Adaptive: the adaptive batching controller applies — Manager is
	// the sharded manager (real) or Model is the Adaptive model
	// (virtual). Virtual multi-program runs price the controller
	// pool-wide; REAL pool-backed runs ignore it (see
	// WithAdaptiveBatching).
	Adaptive bool
	// AsyncMgmt: management runs beside the workers rather than on them —
	// the async manager's dedicated goroutine, or the Async model's
	// ready-buffered dedicated processor.
	AsyncMgmt bool
	// DedicatedProc: the virtual model gives the executive its own
	// processor outside the utilization denominator (Dedicated, Async).
	DedicatedProc bool
	// FaultInjection: WithFaults strikes this pairing — priced virtual
	// faults under Model, bounded wall-clock faults on Manager's real
	// backends. True for every pairing: the fault plan consults the same
	// rules at the same logical chokepoints everywhere.
	FaultInjection bool
	// Deadlines: per-job deadlines abort only the deadlined job with an
	// error wrapping context.DeadlineExceeded. Pool-backed runs and
	// virtual multi-program runs enforce them natively; single-job
	// goroutine runs through the run context. False only when neither
	// side of the pairing has a multi-job engine.
	Deadlines bool
	// Retries: failed attempts restart on a fresh scheduler (Job.Retry /
	// WithRetry). Needs a multi-job engine on at least one side.
	Retries bool
	// Admission: WithAdmission's high-water mark and queueing apply —
	// a real-pool feature, available whenever Manager can drive the pool.
	Admission bool
	// AdaptiveInPool: the adaptive batching controller applies inside a
	// REAL tenant pool. Always false today for every pairing: the pool
	// deliberately omits AdaptiveBatch when it builds per-job drivers,
	// because pool-level parking absorbs the idle-worker signal the
	// controller shrinks on (see tenant.Pool's Submit). Virtual
	// multi-program runs DO price the controller pool-wide — that is the
	// Adaptive bit. A traced pool run pins the behaviour: zero KRetune
	// events regardless of WithAdaptiveBatching.
	AdaptiveInPool bool
}

// Capabilities reports what the (manager, model) pairing supports:
// manager describes the real-machine side, model the virtual-time side.
// Use Runner.Capabilities for a configured Runner's own pairing.
func Capabilities(manager ExecManager, model MgmtModel) Caps {
	return Caps{
		Manager:        manager,
		Model:          model,
		VirtualSingle:  true,
		VirtualMulti:   sim.SupportsMulti(model),
		RealMulti:      executive.SupportsPool(manager),
		Adaptive:       manager == ShardedManager || model == AdaptiveMgmt,
		AsyncMgmt:      manager == AsyncManager || model == AsyncMgmt,
		DedicatedProc:  model == Dedicated || model == AsyncMgmt,
		FaultInjection: true,
		Deadlines:      true,
		Retries:        executive.SupportsPool(manager) || sim.SupportsMulti(model),
		Admission:      executive.SupportsPool(manager),
		// Structurally false: tenant.Pool.Submit never forwards
		// AdaptiveBatch to a job's driver config.
		AdaptiveInPool: false,
	}
}
