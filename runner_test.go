package rundown_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	rundown "repro"
	"repro/internal/testutil"
)

// buildRunnerJob builds a two-phase identity job whose Work writes
// verifiable results (real backends) and whose costs are deterministic
// (virtual backend) — one spec for every machine.
func buildRunnerJob(t testing.TB, n int) (rundown.Job, []float64) {
	t.Helper()
	src := make([]float64, n)
	dst := make([]float64, n)
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name: "produce", Granules: n,
			Work:   func(g rundown.GranuleID) { src[g] = float64(g) * 0.5 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "consume", Granules: n,
			Work: func(g rundown.GranuleID) { dst[g] = src[g] + 1 },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return rundown.Job{
		Name: "probe",
		Prog: prog,
		Opt:  rundown.Options{Grain: 16, Overlap: true, Costs: rundown.DefaultCosts()},
	}, dst
}

func checkRunnerJob(t *testing.T, dst []float64) {
	t.Helper()
	for i := range dst {
		if dst[i] != float64(i)*0.5+1 {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], float64(i)*0.5+1)
		}
	}
}

// TestRunnerThreeBackends is the tentpole acceptance check: one
// Runner.Run call executes the same Job spec on the virtual sim, the
// goroutine executive, and the tenant pool, selected purely by options.
func TestRunnerThreeBackends(t *testing.T) {
	cases := []struct {
		name string
		opts []rundown.Option
		want rundown.BackendKind
		real bool // Work functions execute
	}{
		{"virtual", []rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{})}, rundown.VirtualBackend, false},
		{"goroutines", []rundown.Option{rundown.WithWorkers(4)}, rundown.ExecBackend, true},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}, rundown.PoolBackend, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			job, dst := buildRunnerJob(t, 1024)
			r, err := rundown.New(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if r.Backend() != c.want {
				t.Fatalf("Backend() = %v, want %v", r.Backend(), c.want)
			}
			rep, err := r.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Backend != c.want {
				t.Errorf("report backend = %v, want %v", rep.Backend, c.want)
			}
			if rep.Tasks == 0 {
				t.Error("no tasks in report")
			}
			if rep.Workers != 4 {
				t.Errorf("workers = %d, want 4", rep.Workers)
			}
			if c.real {
				checkRunnerJob(t, dst)
				if rep.Wall <= 0 {
					t.Error("real backend reported no wall time")
				}
			} else {
				if rep.Makespan <= 0 {
					t.Error("virtual backend reported no makespan")
				}
				if rep.Sim == nil {
					t.Error("virtual report missing Sim detail")
				}
			}
		})
	}
}

// TestRunnerManagerSweep runs the same job through Run under every
// manager kind on the goroutine backend — the options-only analogue of
// the executive conformance suite's entry.
func TestRunnerManagerSweep(t *testing.T) {
	for _, kind := range []rundown.ExecManager{rundown.SerialManager, rundown.ShardedManager, rundown.AsyncManager} {
		job, dst := buildRunnerJob(t, 1024)
		r, err := rundown.New(rundown.WithWorkers(4), rundown.WithManager(kind))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rep.Exec == nil || rep.Exec.Manager != kind {
			t.Fatalf("%v: exec report missing or wrong manager: %+v", kind, rep.Exec)
		}
		checkRunnerJob(t, dst)
	}
}

// TestRunnerRunAllVirtualMatchesSimulateMulti pins the wrapper: RunAll
// on a virtual Runner and SimulateMulti produce identical results (both
// deterministic).
func TestRunnerRunAllVirtualMatchesSimulateMulti(t *testing.T) {
	mkJobs := func() []rundown.Job {
		j1, _ := buildRunnerJob(t, 512)
		j2, _ := buildRunnerJob(t, 256)
		j1.Name, j2.Name = "a", "b"
		j2.Priority = 1
		return []rundown.Job{j1, j2}
	}
	r, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 8, Mgmt: rundown.ShardedMgmt}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunAll(context.Background(), mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	jobs := mkJobs()
	specs := make([]rundown.SimJob, len(jobs))
	for i, j := range jobs {
		specs[i] = rundown.SimJob{Name: j.Name, Prog: j.Prog, Opt: j.Opt, Priority: j.Priority, Weight: j.Weight}
	}
	direct, err := rundown.SimulateMulti(specs, rundown.SimConfig{Procs: 8, Mgmt: rundown.ShardedMgmt})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimMulti.Makespan != direct.Makespan || rep.SimMulti.ComputeUnits != direct.ComputeUnits {
		t.Fatalf("RunAll makespan=%d compute=%d, SimulateMulti makespan=%d compute=%d",
			rep.SimMulti.Makespan, rep.SimMulti.ComputeUnits, direct.Makespan, direct.ComputeUnits)
	}
	if len(rep.Jobs) != 2 || rep.Jobs[0].Sim == nil || rep.Jobs[1].Sim == nil {
		t.Fatalf("per-job reports missing: %+v", rep.Jobs)
	}
}

// TestCapabilitiesCrossCheck is the acceptance check for capability
// introspection: Capabilities must agree with what RunAll actually
// accepts, asserted against ErrUnsupportedMgmt for every management
// model, and against the pool constructor for every manager kind.
func TestCapabilitiesCrossCheck(t *testing.T) {
	models := []rundown.MgmtModel{
		rundown.StealsWorker, rundown.Dedicated, rundown.ShardedMgmt,
		rundown.AdaptiveMgmt, rundown.AsyncMgmt,
	}
	for _, model := range models {
		caps := rundown.Capabilities(rundown.SerialManager, model)
		r, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 4, Mgmt: model}))
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Capabilities().VirtualMulti; got != caps.VirtualMulti {
			t.Errorf("%v: Runner.Capabilities().VirtualMulti = %v, Capabilities() = %v", model, got, caps.VirtualMulti)
		}
		j1, _ := buildRunnerJob(t, 64)
		j2, _ := buildRunnerJob(t, 64)
		_, err = r.RunAll(context.Background(), []rundown.Job{j1, j2})
		unsupported := errors.Is(err, rundown.ErrUnsupportedMgmt)
		if err != nil && !unsupported {
			t.Fatalf("%v: unexpected RunAll error: %v", model, err)
		}
		if unsupported == caps.VirtualMulti {
			t.Errorf("%v: Capabilities.VirtualMulti = %v but RunAll unsupported = %v",
				model, caps.VirtualMulti, unsupported)
		}
		// Single-program virtual runs accept every model.
		if !caps.VirtualSingle {
			t.Errorf("%v: VirtualSingle = false", model)
		}
		j3, _ := buildRunnerJob(t, 64)
		if _, err := r.Run(context.Background(), j3); err != nil {
			t.Errorf("%v: single virtual run failed: %v", model, err)
		}
	}
	// Real side: RealMulti must match what a pool-backed RunAll accepts.
	for _, kind := range []rundown.ExecManager{rundown.SerialManager, rundown.ShardedManager, rundown.AsyncManager} {
		caps := rundown.Capabilities(kind, rundown.StealsWorker)
		if !caps.RealMulti {
			t.Errorf("%v: RealMulti = false", kind)
			continue
		}
		r, err := rundown.New(rundown.WithWorkers(4), rundown.WithManager(kind))
		if err != nil {
			t.Fatal(err)
		}
		j1, d1 := buildRunnerJob(t, 256)
		j2, d2 := buildRunnerJob(t, 256)
		rep, err := r.RunAll(context.Background(), []rundown.Job{j1, j2})
		if err != nil {
			t.Fatalf("%v: RunAll: %v", kind, err)
		}
		if rep.Backend != rundown.PoolBackend || rep.Pool == nil {
			t.Errorf("%v: RunAll report backend = %v, pool = %v", kind, rep.Backend, rep.Pool)
		}
		checkRunnerJob(t, d1)
		checkRunnerJob(t, d2)
	}
}

// buildSleepJob wraps the shared sleeping identity chain
// (testutil.SleepChain) in a Job spec, so a cancel lands mid-run even
// on a single-CPU host.
func buildSleepJob(t testing.TB, phases, n int, d time.Duration) rundown.Job {
	t.Helper()
	return rundown.Job{
		Prog: testutil.SleepChain(t, phases, n, d),
		Opt:  rundown.Options{Grain: 1, Overlap: true, Costs: rundown.DefaultCosts()},
	}
}

func waitGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	testutil.WaitGoroutines(t, before)
}

// TestRunnerCancellation cancels a running job on each real backend and
// a virtual run, asserting a prompt ctx.Err()-wrapped return and zero
// leaked goroutines.
func TestRunnerCancellation(t *testing.T) {
	cases := []struct {
		name string
		opts []rundown.Option
	}{
		{"goroutines-serial", []rundown.Option{rundown.WithWorkers(4)}},
		{"goroutines-sharded", []rundown.Option{rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager)}},
		{"goroutines-async", []rundown.Option{rundown.WithWorkers(4), rundown.WithManager(rundown.AsyncManager)}},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			r, err := rundown.New(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := r.Run(ctx, buildSleepJob(t, 3, 256, time.Millisecond))
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want wrapped context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled run did not return promptly")
			}
			waitGoroutineBaseline(t, before)
		})
	}

	// A context cancelled before RunAll is even called returns
	// deterministically at entry — no pool is spun up, no jobs run, and
	// the error wraps ctx.Err() even for jobs fast enough to finish
	// before a watcher goroutine would be scheduled.
	t.Run("pool-precancelled", func(t *testing.T) {
		before := runtime.NumGoroutine()
		r, err := rundown.New(rundown.WithWorkers(4), rundown.WithPool())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = r.RunAll(ctx, []rundown.Job{
			buildSleepJob(t, 1, 2, 0), // fast enough to outrun a watcher
			buildSleepJob(t, 1, 2, 0),
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
		waitGoroutineBaseline(t, before)
	})

	t.Run("virtual", func(t *testing.T) {
		r, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 8}))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		job, _ := buildRunnerJob(t, 8192)
		job.Opt.Grain = 1
		if _, err := r.Run(ctx, job); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	})

	t.Run("pool-runall", func(t *testing.T) {
		before := runtime.NumGoroutine()
		r, err := rundown.New(rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		type res struct {
			rep *rundown.Report
			err error
		}
		done := make(chan res, 1)
		go func() {
			rep, err := r.RunAll(ctx, []rundown.Job{
				buildSleepJob(t, 3, 256, time.Millisecond),
				buildSleepJob(t, 3, 256, time.Millisecond),
			})
			done <- res{rep, err}
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case out := <-done:
			if !errors.Is(out.err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", out.err)
			}
			if out.rep == nil || len(out.rep.Jobs) != 2 {
				t.Fatalf("cancelled RunAll should still report per-job outcomes: %+v", out.rep)
			}
			for _, j := range out.rep.Jobs {
				if !errors.Is(j.Err, context.Canceled) {
					t.Errorf("job %s err = %v, want wrapped context.Canceled", j.Name, j.Err)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled RunAll did not return promptly")
		}
		waitGoroutineBaseline(t, before)
	})
}

// TestRunnerObserver checks the unified observer across backends: every
// snapshot carries the right backend kind, and the stream closes with a
// Final snapshot.
func TestRunnerObserver(t *testing.T) {
	collect := func(opts ...rundown.Option) []rundown.Snapshot {
		var mu sync.Mutex
		var snaps []rundown.Snapshot
		opts = append(opts, rundown.WithObserver(func(s rundown.Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}), rundown.WithObservePeriod(2*time.Millisecond))
		r, err := rundown.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background(), buildSleepJob(t, 2, 64, time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]rundown.Snapshot(nil), snaps...)
	}

	for _, c := range []struct {
		name string
		opts []rundown.Option
		want rundown.BackendKind
	}{
		{"goroutines", []rundown.Option{rundown.WithWorkers(4)}, rundown.ExecBackend},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}, rundown.PoolBackend},
		{"virtual", []rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{})}, rundown.VirtualBackend},
	} {
		t.Run(c.name, func(t *testing.T) {
			snaps := collect(c.opts...)
			if len(snaps) == 0 {
				t.Fatal("no snapshots")
			}
			for i, s := range snaps {
				if s.Backend != c.want {
					t.Fatalf("snapshot %d backend = %v, want %v", i, s.Backend, c.want)
				}
			}
			if !snaps[len(snaps)-1].Final {
				t.Error("stream did not close with a Final snapshot")
			}
		})
	}
}

// TestRunnerStartPool covers the incremental pool lifecycle behind the
// front door, and the virtual Runner's refusal to start one.
func TestRunnerStartPool(t *testing.T) {
	r, err := rundown.New(rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := r.StartPool()
	if err != nil {
		t.Fatal(err)
	}
	job, dst := buildRunnerJob(t, 512)
	h, err := pool.Submit(job.Prog, job.Opt, rundown.PoolJobConfig{Name: "one"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	checkRunnerJob(t, dst)

	vr, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.StartPool(); err == nil {
		t.Fatal("virtual Runner started a goroutine pool")
	}
}

// TestRunnerOptionConflicts: incompatible options fail at New, in either
// order.
func TestRunnerOptionConflicts(t *testing.T) {
	if _, err := rundown.New(rundown.WithPool(), rundown.WithVirtualTime(rundown.SimConfig{Procs: 2})); err == nil {
		t.Error("WithPool then WithVirtualTime accepted")
	}
	if _, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 2}), rundown.WithPool()); err == nil {
		t.Error("WithVirtualTime then WithPool accepted")
	}
}

// TestRunnerManagerDrivesVirtualModel: the manager option retargets the
// virtual model, so one option set moves between machines.
func TestRunnerManagerDrivesVirtualModel(t *testing.T) {
	cases := []struct {
		opts []rundown.Option
		want rundown.MgmtModel
	}{
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{})}, rundown.StealsWorker},
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{}), rundown.WithDedicatedExec()}, rundown.Dedicated},
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{}), rundown.WithManager(rundown.ShardedManager)}, rundown.ShardedMgmt},
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{}), rundown.WithManager(rundown.ShardedManager), rundown.WithAdaptiveBatching(0)}, rundown.AdaptiveMgmt},
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{}), rundown.WithManager(rundown.AsyncManager)}, rundown.AsyncMgmt},
		// Explicit model in SimConfig honored when no manager option given.
		{[]rundown.Option{rundown.WithWorkers(4), rundown.WithVirtualTime(rundown.SimConfig{Mgmt: rundown.AdaptiveMgmt})}, rundown.AdaptiveMgmt},
	}
	for i, c := range cases {
		r, err := rundown.New(c.opts...)
		if err != nil {
			t.Fatal(err)
		}
		job, _ := buildRunnerJob(t, 128)
		rep, err := r.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rep.Model != c.want {
			t.Errorf("case %d: model = %v, want %v", i, rep.Model, c.want)
		}
	}
}
