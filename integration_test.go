package rundown_test

import (
	"testing"

	rundown "repro"
)

// TestIntegrationPaxToExecutive drives the whole stack end to end: a
// PAX-language control program with a loop and a branch-independent ENABLE
// clause is interpreted into a phase program whose phases are bound to real
// Go work functions, executed overlapped on goroutine workers, and the
// numerical result is checked against a serial computation.
func TestIntegrationPaxToExecutive(t *testing.T) {
	const n = 1024
	const sweeps = 3
	a := make([]float64, n)
	b := make([]float64, n)

	src := `
DEFINE PHASE smooth GRANULES 1024 ENABLE [ scale/MAPPING=IDENTITY ]
DEFINE PHASE scale  GRANULES 1024 ENABLE [ smooth/MAPPING=IDENTITY ]
SET i = 0
top:
DISPATCH smooth
DISPATCH scale
SET i = i + 1
IF (i .LT. 3) THEN GO TO top
`
	reg := &rundown.PaxRegistry{
		Impls: map[string]rundown.PaxPhaseImpl{
			"smooth": {Work: func(g rundown.GranuleID) { a[g] = a[g]*0.5 + float64(g) }},
			"scale":  {Work: func(g rundown.GranuleID) { b[g] = a[g] * 2 }},
		},
	}

	file, err := rundown.ParsePax(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rundown.InterpretPax(file, reg, rundown.PaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Phases) != 2*sweeps {
		t.Fatalf("phases = %d, want %d", len(res.Program.Phases), 2*sweeps)
	}

	rep, err := rundown.Execute(res.Program,
		rundown.Options{Grain: 32, Overlap: true, Costs: rundown.DefaultCosts()},
		rundown.ExecConfig{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks == 0 {
		t.Fatal("no tasks executed")
	}

	// Serial reference.
	ra := make([]float64, n)
	rb := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		for g := 0; g < n; g++ {
			ra[g] = ra[g]*0.5 + float64(g)
		}
		for g := 0; g < n; g++ {
			rb[g] = ra[g] * 2
		}
	}
	for g := 0; g < n; g++ {
		if a[g] != ra[g] || b[g] != rb[g] {
			t.Fatalf("diverged at %d: a=%v/%v b=%v/%v", g, a[g], ra[g], b[g], rb[g])
		}
	}
}

// TestIntegrationSimExecutiveAgree runs the same program through both
// drivers and checks that they agree on the schedulable-work totals (the
// two drivers share one scheduler state machine, so operation counts that
// do not depend on timing must match exactly).
func TestIntegrationSimExecutiveAgree(t *testing.T) {
	build := func() *rundown.Program {
		prog, err := rundown.Chain(rundown.KindIdentity, 3, 512, rundown.UnitCost(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	opt := rundown.Options{
		Grain: 16, Overlap: true, Split: rundown.SplitPre,
		Costs: rundown.DefaultCosts(),
	}
	// Pre-splitting makes the task partition deterministic regardless of
	// timing, so both drivers must dispatch exactly the same task count.
	simRes, err := rundown.Simulate(build(), opt, rundown.SimConfig{Procs: 5, Mgmt: rundown.Dedicated})
	if err != nil {
		t.Fatal(err)
	}
	execRep, err := rundown.Execute(build(), opt, rundown.ExecConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Sched.Dispatches != execRep.Sched.Dispatches {
		t.Errorf("dispatch counts differ: sim %d vs executive %d",
			simRes.Sched.Dispatches, execRep.Sched.Dispatches)
	}
	if simRes.Sched.Completions != execRep.Sched.Completions {
		t.Errorf("completion counts differ: sim %d vs executive %d",
			simRes.Sched.Completions, execRep.Sched.Completions)
	}
	if simRes.Sched.TableBuilds != execRep.Sched.TableBuilds {
		t.Errorf("table builds differ: sim %d vs executive %d",
			simRes.Sched.TableBuilds, execRep.Sched.TableBuilds)
	}
}

// TestIntegrationAsyncSimExecutiveAgree is the async analogue: the
// simulator's Async model (dedicated server + ready-buffer) and the real
// AsyncManager (dedicated management goroutine) must dispatch the same
// pre-split task partition — the virtual-time pricing and the hardware
// realization describe one architecture.
func TestIntegrationAsyncSimExecutiveAgree(t *testing.T) {
	build := func() *rundown.Program {
		prog, err := rundown.Chain(rundown.KindIdentity, 3, 512, rundown.UnitCost(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	opt := rundown.Options{
		Grain: 16, Overlap: true, Split: rundown.SplitPre,
		Costs: rundown.DefaultCosts(),
	}
	simRes, err := rundown.Simulate(build(), opt, rundown.SimConfig{Procs: 4, Mgmt: rundown.AsyncMgmt})
	if err != nil {
		t.Fatal(err)
	}
	execRep, err := rundown.Execute(build(), opt, rundown.ExecConfig{
		Workers: 4, Manager: rundown.AsyncManager,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Sched.Dispatches != execRep.Sched.Dispatches {
		t.Errorf("dispatch counts differ: sim %d vs executive %d",
			simRes.Sched.Dispatches, execRep.Sched.Dispatches)
	}
	if simRes.Sched.Completions != execRep.Sched.Completions {
		t.Errorf("completion counts differ: sim %d vs executive %d",
			simRes.Sched.Completions, execRep.Sched.Completions)
	}
}

// TestIntegrationCasperProfileExecutive runs the full 22-phase CASPER
// census profile on the goroutine executive with every phase given real
// (if tiny) work, and checks that every granule executed exactly once.
func TestIntegrationCasperProfileExecutive(t *testing.T) {
	prog, err := rundown.CasperProgram(rundown.CasperConfig{
		GranulesPerLine: 1,
		SerialCost:      10,
		Seed:            99,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]int32, len(prog.Phases))
	for i, ph := range prog.Phases {
		counts[i] = make([]int32, ph.Granules)
		idx := i
		ph.Work = func(g rundown.GranuleID) { counts[idx][g]++ }
	}
	if _, err := rundown.Execute(prog,
		rundown.Options{Grain: 16, Overlap: true, Elevate: true, Costs: rundown.DefaultCosts()},
		rundown.ExecConfig{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		for g, c := range counts[i] {
			if c != 1 {
				t.Fatalf("phase %d granule %d executed %d times", i, g, c)
			}
		}
	}
}

// TestIntegrationInterlockStopsWrongProgram: the language-level interlock
// must stop a control program whose branch dispatches an undeclared
// successor — the user mistake the paper's construct exists to catch.
func TestIntegrationInterlockStopsWrongProgram(t *testing.T) {
	src := `
DEFINE PHASE a GRANULES 16
DEFINE PHASE b GRANULES 16
DEFINE PHASE c GRANULES 16
SET choose = 1
DISPATCH a ENABLE/BRANCHINDEPENDENT [ b/MAPPING=IDENTITY ]
IF (choose .EQ. 1) THEN GO TO other
DISPATCH b
GO TO end
other:
DISPATCH c
end:
`
	file, err := rundown.ParsePax(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rundown.InterpretPax(file, nil, rundown.PaxOptions{}); err == nil {
		t.Fatal("interlock failed to catch undeclared successor c")
	}
}
