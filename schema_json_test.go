package rundown

// Pins the service wire schema: reports, job reports, fault specs and
// the enum string codecs must keep marshaling to the same keys and
// names, because rundownd clients parse them. A failure here means a
// wire-visible schema break.

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestBackendKindJSON(t *testing.T) {
	names := map[BackendKind]string{
		ExecBackend:    "goroutines",
		PoolBackend:    "pool",
		VirtualBackend: "virtual",
	}
	for bk, want := range names {
		b, err := json.Marshal(bk)
		if err != nil {
			t.Fatalf("marshal %v: %v", bk, err)
		}
		if string(b) != `"`+want+`"` {
			t.Errorf("backend %v marshals to %s, want %q", bk, b, want)
		}
		var back BackendKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != bk {
			t.Errorf("round trip of %v gave %v", bk, back)
		}
	}
	var bk BackendKind
	if err := json.Unmarshal([]byte(`"quantum"`), &bk); err == nil {
		t.Error("unknown backend name unmarshaled without error")
	}
	// The lenient numeric form keeps old stored reports readable.
	if err := json.Unmarshal([]byte(`1`), &bk); err != nil || bk != PoolBackend {
		t.Errorf("numeric backend 1 gave (%v, %v), want PoolBackend", bk, err)
	}
}

func TestEnumStringJSON(t *testing.T) {
	// Manager and model enums ride inside Report; pin their names too.
	for _, m := range []ExecManager{SerialManager, ShardedManager, AsyncManager} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal manager %v: %v", m, err)
		}
		if string(b) != `"`+m.String()+`"` {
			t.Errorf("manager %v marshals to %s", m, b)
		}
		var back ExecManager
		if err := json.Unmarshal(b, &back); err != nil || back != m {
			t.Errorf("manager round trip of %v gave (%v, %v)", m, back, err)
		}
	}
	for _, m := range []MgmtModel{StealsWorker, Dedicated, ShardedMgmt, AdaptiveMgmt, AsyncMgmt} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal model %v: %v", m, err)
		}
		var back MgmtModel
		if err := json.Unmarshal(b, &back); err != nil || back != m {
			t.Errorf("model round trip of %v gave (%v, %v)", m, back, err)
		}
	}
}

func TestJobReportJSONRoundTrip(t *testing.T) {
	in := JobReport{
		Name:           "etl",
		Err:            errors.New("granule 12 exploded"),
		Exec:           &ExecReport{Manager: ShardedManager, Wall: 3 * time.Millisecond, Tasks: 7},
		Backfill:       42,
		Attempts:       2,
		QueueWait:      time.Millisecond,
		DeadlineMargin: -time.Second,
		HasDeadline:    true,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{`"name"`, `"error"`, `"exec"`, `"backfill"`, `"attempts"`,
		`"queue_wait_ns"`, `"deadline_margin_ns"`, `"has_deadline"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JobReport JSON missing pinned key %s: %s", key, b)
		}
	}
	var out JobReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Err == nil || out.Err.Error() != in.Err.Error() {
		t.Errorf("error round trip gave %v, want %v", out.Err, in.Err)
	}
	if out.Name != in.Name || out.Backfill != in.Backfill || out.Attempts != in.Attempts ||
		out.QueueWait != in.QueueWait || out.DeadlineMargin != in.DeadlineMargin ||
		!out.HasDeadline || out.Exec == nil || out.Exec.Tasks != 7 || out.Exec.Manager != ShardedManager {
		t.Errorf("round trip mangled fields: %+v", out)
	}

	// A clean report omits the error key entirely.
	clean, err := json.Marshal(JobReport{Name: "ok"})
	if err != nil {
		t.Fatalf("marshal clean: %v", err)
	}
	if strings.Contains(string(clean), `"error"`) {
		t.Errorf("clean JobReport carries an error key: %s", clean)
	}
}

func TestSimJobResultJSONRoundTrip(t *testing.T) {
	in := JobReport{
		Name: "vjob",
		Sim: &SimJobResult{
			Name: "vjob", Makespan: 9000, ComputeUnits: 8000, BackfillUnits: 100,
			HomeWorkers: 4, Attempts: 3, Err: errors.New("deadline"),
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out JobReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Sim == nil || out.Sim.Makespan != 9000 || out.Sim.Err == nil ||
		out.Sim.Err.Error() != "deadline" || out.Sim.Attempts != 3 {
		t.Errorf("sim result round trip mangled: %+v", out.Sim)
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := &Report{
		Backend:     PoolBackend,
		Manager:     AsyncManager,
		Workers:     8,
		Tasks:       128,
		Wall:        time.Second,
		Utilization: 0.75,
		Pool:        &PoolReport{Workers: 8, Jobs: 2, MaxBackfillTask: 16},
		Jobs:        []JobReport{{Name: "a"}, {Name: "b", Err: errors.New("boom")}},
		Trace:       &Trace{},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(b)
	for _, want := range []string{`"backend":"pool"`, `"manager":"async"`, `"workers":8`,
		`"wall_ns":1000000000`, `"max_backfill_task":16`, `"jobs":[`} {
		if !strings.Contains(s, want) {
			t.Errorf("Report JSON missing pinned fragment %s: %s", want, s)
		}
	}
	// Traces travel only in the binary format; never inline in a report.
	if strings.Contains(s, "Trace") || strings.Contains(s, `"trace"`) {
		t.Errorf("Report JSON inlines the trace: %s", s)
	}
	var out Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Backend != PoolBackend || out.Manager != AsyncManager ||
		len(out.Jobs) != 2 || out.Jobs[1].Err == nil {
		t.Errorf("report round trip mangled: %+v", out)
	}
}

func TestFaultSpecJSONRoundTrip(t *testing.T) {
	kinds := []FaultKind{
		FaultGrainPanic, FaultGrainError, FaultGrainStall, FaultGrainSlow,
		FaultWorkerCrash, FaultWorkerWedge, FaultWorkerSlow, FaultMgmtDelay,
		FaultDropWakeup,
	}
	in := FaultSpec{Seed: 7}
	for i, k := range kinds {
		in.Rules = append(in.Rules, FaultRule{
			Kind: k, Job: i, Phase: -1, Granule: uint32(i), Worker: -1,
			Delay: int64(i), Factor: 3, Count: 1,
		})
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Kinds travel by name, never by enum value.
	for _, name := range []string{"grain-panic", "worker-wedge", "drop-wakeup"} {
		if !strings.Contains(string(b), `"`+name+`"`) {
			t.Errorf("FaultSpec JSON missing kind name %q: %s", name, b)
		}
	}
	var out FaultSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Seed != in.Seed || len(out.Rules) != len(in.Rules) {
		t.Fatalf("round trip shape: got %d rules seed %d", len(out.Rules), out.Seed)
	}
	for i := range in.Rules {
		if out.Rules[i] != in.Rules[i] {
			t.Errorf("rule %d round trip: got %+v want %+v", i, out.Rules[i], in.Rules[i])
		}
	}
	var k FaultKind
	if err := json.Unmarshal([]byte(`"grain-meltdown"`), &k); err == nil {
		t.Error("unknown fault kind unmarshaled without error")
	}
	for _, k := range kinds {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFaultKind(%q) = (%v, %v)", k.String(), got, err)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	sn := Snapshot{Backend: PoolBackend, Final: true, Elapsed: time.Second,
		Tasks: 10, Jobs: 1, Utilization: 0.5}
	b, err := json.Marshal(sn)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"backend":"pool"`, `"final":true`,
		`"elapsed_ns":1000000000`, `"tasks":10`, `"utilization":0.5`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("Snapshot JSON missing pinned fragment %s: %s", want, b)
		}
	}
}
