package rundown

import (
	"context"
	"fmt"
	"time"

	"repro/internal/executive"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// Runner is the package's front door: one configured entry point whose
// Run and RunAll execute the same backend-agnostic Job spec on the
// virtual discrete-event machine, on real goroutine workers, or inside a
// multi-tenant worker pool — selected purely by the options given to
// New. Legacy entry points (Simulate, SimulateMulti, Execute, NewPool)
// are thin wrappers over a Runner.
//
//	r, _ := rundown.New(rundown.WithWorkers(8), rundown.WithManager(rundown.AsyncManager))
//	rep, err := r.Run(ctx, rundown.Job{Prog: prog, Opt: opt})
//
// Both methods honor ctx: cancellation aborts the run at the next
// dispatch boundary with an error wrapping ctx.Err(), releases parked
// workers, and tears down goroutine-free.
type Runner struct {
	cfg     runnerConfig
	backend Backend
}

// Backend dispatches Jobs on one machine model. The three built-in
// backends — virtual time, goroutine executive, tenant pool — are chosen
// by Runner options; Runner.Run and Runner.RunAll delegate to it.
type Backend interface {
	// Kind identifies the machine.
	Kind() BackendKind
	// Run executes one job to completion.
	Run(ctx context.Context, job Job) (*Report, error)
	// RunAll executes several jobs sharing the machine.
	RunAll(ctx context.Context, jobs []Job) (*Report, error)
}

// New builds a Runner from functional options. With no options it runs
// jobs on the goroutine executive with the serial manager and
// runtime.GOMAXPROCS(0) workers. Conflicting options (for example
// WithPool with WithVirtualTime) make New fail.
func New(opts ...Option) (*Runner, error) {
	r := &Runner{}
	for _, o := range opts {
		if err := o(&r.cfg); err != nil {
			return nil, err
		}
	}
	r.cfg.resolve()
	switch {
	case r.cfg.virtual:
		r.backend = &virtualBackend{c: &r.cfg}
	case r.cfg.pool:
		r.backend = &poolBackend{c: &r.cfg}
	default:
		r.backend = &execBackend{c: &r.cfg}
	}
	return r, nil
}

// Run executes job on the configured backend and returns the unified
// report. Cancelling ctx aborts the run with an error wrapping
// ctx.Err().
func (r *Runner) Run(ctx context.Context, job Job) (*Report, error) {
	return r.backend.Run(ctx, job)
}

// RunAll executes jobs sharing the configured machine: the tenant pool's
// overlap-first dispatch on real backends, the multi-program simulation
// on the virtual backend. Jobs that fail individually appear with their
// error in Report.Jobs; the returned error is the first job error (so a
// partial Report and an error can both be non-nil on real backends).
func (r *Runner) RunAll(ctx context.Context, jobs []Job) (*Report, error) {
	return r.backend.RunAll(ctx, jobs)
}

// Backend reports which machine the Runner drives.
func (r *Runner) Backend() BackendKind { return r.backend.Kind() }

// Capabilities reports what the Runner's configured manager/model
// pairing supports — in particular whether RunAll is available on the
// virtual backend before anything runs.
func (r *Runner) Capabilities() Caps {
	return Capabilities(r.cfg.manager, r.cfg.model())
}

// StartPool starts a live multi-tenant pool configured from the Runner's
// options, for callers that need the incremental Submit/Wait/Close
// lifecycle rather than the one-shot RunAll. Virtual runners cannot
// start a pool.
func (r *Runner) StartPool() (*Pool, error) {
	if r.cfg.virtual {
		return nil, fmt.Errorf("rundown: a virtual-time Runner cannot start a goroutine pool (use RunAll)")
	}
	cfg := r.cfg.poolConfig()
	// A started pool has no Report to dump into; metrics callers read the
	// live registry instead (WithMetricsRegistry plus Handler/Publish).
	cfg.Metrics = r.cfg.newMetrics("ns")
	// Likewise it has no Report to attach a trace to: a caller-owned
	// recorder (WithTraceRecorder) is the live-pool tracing surface.
	cfg.Trace = r.cfg.traceRec
	return tenant.NewPool(cfg)
}

// jobName labels job i of a RunAll.
func jobName(job Job, i int) string {
	if job.Name != "" {
		return job.Name
	}
	return fmt.Sprintf("job%d", i)
}

// execBackend runs single jobs on a dedicated goroutine executive and
// delegates RunAll to the pool backend (the executive has no multi-job
// surface of its own).
type execBackend struct {
	c *runnerConfig
}

func (b *execBackend) Kind() BackendKind { return ExecBackend }

func (b *execBackend) Run(ctx context.Context, job Job) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// A single-job goroutine run enforces the deadline through its run
	// context: the executive aborts at the next dispatch boundary with an
	// error wrapping context.DeadlineExceeded.
	if d := b.c.jobDeadline(job); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	rec := b.c.newRecorder()
	met := b.c.newMetrics("ns")
	cfg := b.c.execConfig()
	cfg.Trace = rec
	cfg.Metrics = met
	rep, err := executive.RunContext(ctx, job.Prog, b.c.jobOpt(job), cfg)
	if err != nil {
		// Every failure names the job it killed, and cancellation or
		// deadline errors keep wrapping ctx.Err() through this layer.
		return nil, fmt.Errorf("rundown: job %q: %w", jobName(job, 0), err)
	}
	out := &Report{
		Backend:     ExecBackend,
		Manager:     b.c.manager,
		Workers:     b.c.workers,
		Tasks:       rep.Tasks,
		Wall:        rep.Wall,
		Utilization: rep.Utilization,
		MgmtRatio:   rep.MgmtRatio,
		Exec:        rep,
	}
	b.c.finishMetrics(met, out)
	if terr := b.c.finishTrace(rec, out); terr != nil {
		return out, terr
	}
	return out, nil
}

func (b *execBackend) RunAll(ctx context.Context, jobs []Job) (*Report, error) {
	return (&poolBackend{c: b.c}).RunAll(ctx, jobs)
}

// poolBackend runs jobs on the multi-tenant worker pool.
type poolBackend struct {
	c *runnerConfig
}

func (b *poolBackend) Kind() BackendKind { return PoolBackend }

func (b *poolBackend) Run(ctx context.Context, job Job) (*Report, error) {
	return b.RunAll(ctx, []Job{job})
}

func (b *poolBackend) RunAll(ctx context.Context, jobs []Job) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// failEarly keeps the observer contract — one Final snapshot on
	// every outcome — for runs that die before the pool exists (once
	// the pool is up, its own Close emits the Final snapshot).
	failEarly := func(err error) (*Report, error) {
		if b.c.observer != nil {
			b.c.observer(Snapshot{Backend: PoolBackend, Final: true})
		}
		return nil, err
	}
	// Match the virtual backend's contract (sim.RunMulti rejects an
	// empty job list) instead of silently spinning up and tearing down
	// an idle pool.
	if len(jobs) == 0 {
		return failEarly(fmt.Errorf("rundown: RunAll needs at least one job"))
	}
	// An already-cancelled context aborts deterministically before the
	// pool spins up — fast jobs could otherwise finish before the
	// watcher goroutine ever runs, returning success under a cancelled
	// context.
	if err := ctx.Err(); err != nil {
		return failEarly(fmt.Errorf("rundown: run canceled: %w", err))
	}
	rec := b.c.newRecorder()
	met := b.c.newMetrics("ns")
	pcfg := b.c.poolConfig()
	pcfg.Trace = rec
	pcfg.Metrics = met
	pool, err := tenant.NewPool(pcfg)
	if err != nil {
		return failEarly(err)
	}

	// Cancellation watcher (the executive's shared WatchCancel): ctx
	// firing aborts every active job with a ctx.Err()-wrapped error; the
	// watcher is joined before returning so teardown is
	// goroutine-leak-free.
	stopWatch := executive.WatchCancel(ctx, func(err error) {
		pool.Abort(fmt.Errorf("rundown: run canceled: %w", err))
	})

	handles := make([]*tenant.Job, 0, len(jobs))
	for i, job := range jobs {
		h, err := pool.Submit(job.Prog, b.c.jobOpt(job), tenant.JobConfig{
			Name: jobName(job, i), Priority: job.Priority, Weight: job.Weight,
			Deadline: b.c.jobDeadline(job),
			Retry:    b.c.jobRetry(job),
			Backoff:  b.c.jobBackoff(job),
		})
		if err != nil {
			submitErr := fmt.Errorf("rundown: job %q: %w", jobName(job, i), err)
			pool.Abort(submitErr)
			pool.Close()
			stopWatch()
			return nil, submitErr
		}
		handles = append(handles, h)
	}
	// The watcher can fire while jobs are still being submitted — or
	// before any were — and Abort only fails jobs active at that
	// instant, so a cancellation landing inside the submit loop would be
	// silently lost for later jobs. One recheck after the last Submit
	// closes every such window: no further jobs join the pool after this
	// point.
	if err := ctx.Err(); err != nil {
		pool.Abort(fmt.Errorf("rundown: run canceled: %w", err))
	}

	rep := &Report{
		Backend: PoolBackend,
		Manager: b.c.manager,
		Workers: b.c.workers,
	}
	var firstErr error
	for i, h := range handles {
		jr, jerr := h.Wait()
		jrep := JobReport{
			Name: jobName(jobs[i], i), Err: jerr, Exec: jr, Backfill: h.BackfillTasks(),
			Attempts:  h.Attempts(),
			QueueWait: h.QueueWait(),
		}
		jrep.DeadlineMargin, jrep.HasDeadline = h.DeadlineMargin()
		rep.Jobs = append(rep.Jobs, jrep)
		if jerr != nil && firstErr == nil {
			firstErr = fmt.Errorf("rundown: job %q: %w", jobName(jobs[i], i), jerr)
		}
	}
	poolRep, closeErr := pool.Close()
	stopWatch()

	rep.Pool = poolRep
	rep.Tasks = poolRep.Tasks
	rep.Wall = poolRep.Wall
	rep.Utilization = poolRep.Utilization
	rep.Faults = poolRep.Faults
	rep.Retries = poolRep.Retries
	if poolRep.Mgmt > 0 {
		rep.MgmtRatio = float64(poolRep.Compute) / float64(poolRep.Mgmt)
	}
	if len(rep.Jobs) == 1 {
		rep.Exec = rep.Jobs[0].Exec
	}
	if firstErr == nil {
		firstErr = closeErr
	}
	b.c.finishMetrics(met, rep)
	if terr := b.c.finishTrace(rec, rep); terr != nil && firstErr == nil {
		firstErr = terr
	}
	return rep, firstErr
}

// virtualBackend runs jobs on the deterministic discrete-event machine.
type virtualBackend struct {
	c *runnerConfig
}

func (b *virtualBackend) Kind() BackendKind { return VirtualBackend }

func (b *virtualBackend) Run(ctx context.Context, job Job) (*Report, error) {
	rec := b.c.newRecorder()
	met := b.c.newMetrics("virtual")
	cfg := b.c.simConfig()
	cfg.Trace = rec
	cfg.Metrics = met
	res, err := sim.RunContext(ctx, job.Prog, b.c.jobOpt(job), cfg)
	if err != nil {
		return nil, err
	}
	out := &Report{
		Backend:     VirtualBackend,
		Manager:     b.c.manager,
		Model:       cfg.Mgmt,
		Workers:     res.Procs,
		Tasks:       res.Sched.Dispatches,
		Makespan:    res.Makespan,
		Utilization: res.Utilization,
		MgmtRatio:   res.MgmtRatio,
		Sim:         res,
	}
	b.c.finishMetrics(met, out)
	if terr := b.c.finishTrace(rec, out); terr != nil {
		return out, terr
	}
	return out, nil
}

func (b *virtualBackend) RunAll(ctx context.Context, jobs []Job) (*Report, error) {
	rec := b.c.newRecorder()
	met := b.c.newMetrics("virtual")
	cfg := b.c.simConfig()
	cfg.Trace = rec
	cfg.Metrics = met
	specs := make([]sim.JobSpec, len(jobs))
	for i, job := range jobs {
		specs[i] = sim.JobSpec{
			Name: jobName(job, i), Prog: job.Prog, Opt: b.c.jobOpt(job),
			Priority: job.Priority, Weight: job.Weight,
			// One virtual unit per nanosecond keeps the same Job spec
			// meaningful on both clocks.
			Deadline: int64(b.c.jobDeadline(job)),
			Retry:    b.c.jobRetry(job),
			Backoff:  int64(b.c.jobBackoff(job)),
		}
	}
	res, err := sim.RunMultiContext(ctx, specs, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Backend:     VirtualBackend,
		Manager:     b.c.manager,
		Model:       cfg.Mgmt,
		Workers:     res.Procs,
		Makespan:    res.Makespan,
		Utilization: res.Utilization,
		SimMulti:    res,
	}
	rep.Faults = res.Faults
	rep.Retries = res.Retries
	var firstErr error
	for i := range res.Jobs {
		j := &res.Jobs[i]
		rep.Tasks += j.Sched.Dispatches
		jrep := JobReport{
			Name: j.Name, Err: j.Err, Sim: j, Backfill: j.BackfillUnits,
			Attempts: j.Attempts,
		}
		// Virtual jobs all activate at submission (QueueWait 0); a
		// deadlined job's margin is its budget minus its makespan, on the
		// one-unit-per-nanosecond clock the Deadline spec uses.
		if d := specs[i].Deadline; d > 0 {
			jrep.DeadlineMargin = time.Duration(d - j.Makespan)
			jrep.HasDeadline = true
		}
		rep.Jobs = append(rep.Jobs, jrep)
		if j.Err != nil && firstErr == nil {
			// Same contract as the pool backend: per-job failures land in
			// Jobs, the first one (in submit order) is also the returned
			// error, and both the Report and the error are non-nil.
			firstErr = fmt.Errorf("rundown: job %q: %w", j.Name, j.Err)
		}
	}
	if res.MgmtUnits > 0 {
		rep.MgmtRatio = float64(res.ComputeUnits) / float64(res.MgmtUnits)
	}
	b.c.finishMetrics(met, rep)
	if terr := b.c.finishTrace(rec, rep); terr != nil && firstErr == nil {
		firstErr = terr
	}
	return rep, firstErr
}
