package rundown_test

// One benchmark per experiment E1..E8 (see DESIGN.md's experiment index):
// each runs
// the experiment at Quick scale and reports its headline metric so `go test
// -bench=. -benchmem` regenerates the shape of every quantitative claim in
// the paper. cmd/experiments prints the full tables; EXPERIMENTS.md records
// the Full-scale numbers.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	rundown "repro"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func benchExperiment(b *testing.B, id string, metric func(t *experiments.Table) (string, float64)) {
	var spec experiments.Spec
	for _, s := range experiments.All() {
		if s.ID == id {
			spec = s
		}
	}
	if spec.Run == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = spec.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil && tbl != nil {
		name, v := metric(tbl)
		b.ReportMetric(v, name)
	}
}

func cellF(tbl *experiments.Table, row, col int) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "%"), 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkE1MappingCensus regenerates the PAX/CASPER enablement-mapping
// census (6/9/4/2/1 phases; 266/551/262/78/31 lines; 68% simply
// overlappable) and the footprint-based pipeline classification.
func BenchmarkE1MappingCensus(b *testing.B) {
	benchExperiment(b, "E1", func(t *experiments.Table) (string, float64) {
		return "universal-phases", cellF(t, 0, 1)
	})
}

// BenchmarkE2CheckerboardRundown regenerates the paper's worked rundown
// example (524 computations/processor, 288 left over, 712 idle) and the
// seam-mapping recovery.
func BenchmarkE2CheckerboardRundown(b *testing.B) {
	benchExperiment(b, "E2", func(t *experiments.Table) (string, float64) {
		return "barrier-utilization", cellF(t, 0, 7)
	})
}

// BenchmarkE3MappingSweep regenerates the rundown-recovery-by-mapping-kind
// sweep (universal/identity best, indirect at executive cost, null zero).
func BenchmarkE3MappingSweep(b *testing.B) {
	benchExperiment(b, "E3", func(t *experiments.Table) (string, float64) {
		return "universal-gain-%", cellF(t, 1, 3)
	})
}

// BenchmarkE4TaskRatio regenerates the paper's two-tasks-per-processor
// outset condition.
func BenchmarkE4TaskRatio(b *testing.B) {
	benchExperiment(b, "E4", func(t *experiments.Table) (string, float64) {
		return "util-at-2-tasks", cellF(t, 1, 3)
	})
}

// BenchmarkE5MgmtRatio regenerates the computation-to-management ratio
// sweep (the paper's "neighborhood of 200").
func BenchmarkE5MgmtRatio(b *testing.B) {
	benchExperiment(b, "E5", func(t *experiments.Table) (string, float64) {
		return "coarse-grain-ratio", cellF(t, len(t.Rows)-1, 4)
	})
}

// BenchmarkE6SplitPolicies regenerates the executive control-strategy
// comparison (demand/inline vs deferred vs presplit vs released-ahead).
func BenchmarkE6SplitPolicies(b *testing.B) {
	benchExperiment(b, "E6", func(t *experiments.Table) (string, float64) {
		return "presplit-utilization", cellF(t, 3, 2)
	})
}

// BenchmarkE7CompositeMapCost regenerates the composite-map-cost study
// (inline self-defeat vs deferred+cancel bounded loss).
func BenchmarkE7CompositeMapCost(b *testing.B) {
	benchExperiment(b, "E7", func(t *experiments.Table) (string, float64) {
		return "deferred-best-gain-%", cellF(t, 4, 5)
	})
}

// BenchmarkE8EndToEnd regenerates the end-to-end CASPER-profile
// barrier-vs-overlap comparison.
func BenchmarkE8EndToEnd(b *testing.B) {
	benchExperiment(b, "E8", func(t *experiments.Table) (string, float64) {
		return "gain-%-at-8-procs", cellF(t, 0, 3)
	})
}

// BenchmarkExecutiveSORSweep measures the real goroutine executive on the
// red/black SOR workload with seam overlap (wall-clock, not virtual time).
func BenchmarkExecutiveSORSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := rundown.NewGrid(96, 1.3, rundown.HotEdgeBoundary(96))
		if err != nil {
			b.Fatal(err)
		}
		prog, err := g.SORProgram(4, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rundown.Execute(prog, rundown.Options{
			Grain: 256, Overlap: true, Costs: rundown.DefaultCosts(),
		}, rundown.ExecConfig{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures discrete-event simulator speed on a
// large identity chain (events per second drive all experiment runtimes).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := rundown.Chain(rundown.KindIdentity, 4, 16384, rundown.UnitCost(), 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rundown.Simulate(prog, rundown.Options{
			Grain: 64, Overlap: true, Costs: rundown.DefaultCosts(),
		}, rundown.SimConfig{Procs: 64, Mgmt: rundown.StealsWorker})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Sched.Dispatches), "tasks")
		}
	}
}

// BenchmarkSimulatorThroughputMulti measures the multi-program
// discrete-event engine: 8 co-tenant identity-chain jobs (mixed sizes,
// priorities and weights, so the backfill order and deficit machinery are
// on the hot path) sharing a 64-processor machine. Reports granules/sec
// of simulated work and allocs/op — the PR 6 rewrite gates both: ≥ 5x
// the seed engine's throughput, zero steady-state allocs per dispatch.
func BenchmarkSimulatorThroughputMulti(b *testing.B) {
	const jobs = 8
	specs := make([]rundown.SimJob, jobs)
	var granules int64
	for i := range specs {
		n := 8192 + 2048*i
		prog, err := rundown.Chain(rundown.KindIdentity, 3, n, rundown.UnitCost(), uint64(5+i))
		if err != nil {
			b.Fatal(err)
		}
		granules += int64(prog.TotalGranules())
		specs[i] = rundown.SimJob{
			Name: "job" + strconv.Itoa(i), Prog: prog,
			Opt:      rundown.Options{Grain: 8, Overlap: true, Costs: rundown.DefaultCosts()},
			Priority: i % 2, Weight: 1 + i%3,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rundown.SimulateMulti(specs, rundown.SimConfig{Procs: 64, Mgmt: rundown.ShardedMgmt}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(granules)*float64(b.N)/b.Elapsed().Seconds(), "granules/sec")
}

// BenchmarkSimulatorScaleMillion is the scale lab's acceptance workload:
// one million granules spread over 32 co-tenant jobs on a 1024-worker
// machine — the co-tenancy scale no CI host can run on real goroutines.
// The engine must complete each run in single-digit seconds.
func BenchmarkSimulatorScaleMillion(b *testing.B) {
	const jobs = 32
	specs := make([]rundown.SimJob, jobs)
	var granules int64
	for i := range specs {
		prog, err := rundown.Chain(rundown.KindIdentity, 4, 1_000_000/(4*jobs), rundown.UnitCost(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		granules += int64(prog.TotalGranules())
		specs[i] = rundown.SimJob{
			Name: "job" + strconv.Itoa(i), Prog: prog,
			Opt:      rundown.Options{Grain: 4, Overlap: true, Costs: rundown.DefaultCosts()},
			Priority: i % 3, Weight: 1 + i%2,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rundown.SimulateMulti(specs, rundown.SimConfig{Procs: 1024, Mgmt: rundown.ShardedMgmt}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(granules)*float64(b.N)/b.Elapsed().Seconds(), "granules/sec")
}

// BenchmarkE9JobStreams regenerates the introduction's batching-vs-overlap
// trade-off (batch raises utilization but lengthens each job).
func BenchmarkE9JobStreams(b *testing.B) {
	benchExperiment(b, "E9", func(t *experiments.Table) (string, float64) {
		return "overlap-utilization", cellF(t, 2, 4)
	})
}

// Manager head-to-head benchmarks: the serial manager (the paper's one
// global executive lock) against the sharded manager (per-worker deques,
// batched completion submission, work stealing) on real goroutine workers
// across the three workload families. Each benchmark reports utilization
// and the computation-to-management ratio; the structural claim is the
// utilization gap at fine grain, where per-task serialization dominates
// the serial manager.

// managerBenchConfig is the common 8-worker setup of the comparison.
func managerBenchConfig(kind rundown.ExecManager) rundown.ExecConfig {
	return rundown.ExecConfig{Workers: 8, Manager: kind, DequeCap: 32, Batch: 16}
}

func benchManager(b *testing.B, kind rundown.ExecManager,
	build func(b *testing.B) (*rundown.Program, rundown.Options)) {
	var utils, ratios []float64
	for i := 0; i < b.N; i++ {
		prog, opt := build(b)
		rep, err := rundown.Execute(prog, opt, managerBenchConfig(kind))
		if err != nil {
			b.Fatal(err)
		}
		utils = append(utils, rep.Utilization)
		ratios = append(ratios, rep.MgmtRatio)
	}
	// Medians, not means: on an oversubscribed host an OS preemption that
	// lands inside a tiny work window inflates that iteration's measured
	// compute by the whole descheduled period, so means are dominated by
	// rare outliers.
	b.ReportMetric(stats.Percentile(utils, 50), "utilization")
	b.ReportMetric(stats.Percentile(ratios, 50), "compute:mgmt")
}

// buildChainFine is the acceptance workload: a fine-grain identity chain
// whose tiny tasks make management the bottleneck. The sharded manager
// must show at least 1.5x the serial manager's utilization here.
func buildChainFine(b *testing.B) (*rundown.Program, rundown.Options) {
	n := 1 << 15
	a := make([]int64, n)
	c := make([]int64, n)
	prog, err := rundown.NewProgram(
		&rundown.Phase{
			Name: "fill", Granules: n,
			Work:   func(g rundown.GranuleID) { a[g] = int64(g) * 3 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "scale", Granules: n,
			Work:   func(g rundown.GranuleID) { c[g] = a[g] + 1 },
			Enable: rundown.Identity(),
		},
		&rundown.Phase{
			Name: "sum", Granules: n,
			Work: func(g rundown.GranuleID) { a[g] = c[g] ^ a[g] },
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	// Grain 1 is the finest possible tasking: per-task management is at
	// its maximum relative to compute. Identity enablement runs through
	// the counter table (scheduling results are identical to the
	// conflict-queue mechanism; see core.IdentityMode), which lets the
	// batch paths coalesce completions and releases.
	return prog, rundown.Options{
		Grain: 1, Overlap: true, IdentityVia: rundown.IdentityTable,
		Costs: rundown.DefaultCosts(),
	}
}

func buildCasperPipeline(b *testing.B) (*rundown.Program, rundown.Options) {
	p, err := rundown.NewPipeline(1 << 14)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Program()
	if err != nil {
		b.Fatal(err)
	}
	return prog, rundown.Options{Grain: 64, Overlap: true, Elevate: true, Costs: rundown.DefaultCosts()}
}

func buildCheckerboard(b *testing.B) (*rundown.Program, rundown.Options) {
	g, err := rundown.NewGrid(96, 1.3, rundown.HotEdgeBoundary(96))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := g.SORProgram(4, true)
	if err != nil {
		b.Fatal(err)
	}
	return prog, rundown.Options{Grain: 64, Overlap: true, Costs: rundown.DefaultCosts()}
}

// Pool benchmarks: the multi-tenant worker pool (internal/tenant) layered
// above the managers. The single-job pool against Execute is the
// tenancy-layer overhead; the two-job pool reports how much of the
// machine cross-job backfill recovers; the virtual-time pool prices the
// dispatch policy deterministically (no wall-clock noise).

// BenchmarkPoolSingleJobSharded runs the fine-grain chain through a
// single-job pool — compare against BenchmarkManagerChainFineSharded to
// see what the tenancy layer costs when tenancy is not used.
func BenchmarkPoolSingleJobSharded(b *testing.B) {
	var utils []float64
	for i := 0; i < b.N; i++ {
		prog, opt := buildChainFine(b)
		p, err := rundown.NewPool(rundown.PoolConfig{
			Workers: 8, Manager: rundown.ShardedManager, DequeCap: 32, Batch: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		job, err := p.Submit(prog, opt, rundown.PoolJobConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := job.Wait()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Close(); err != nil {
			b.Fatal(err)
		}
		utils = append(utils, rep.Utilization)
	}
	b.ReportMetric(stats.Percentile(utils, 50), "utilization")
}

// BenchmarkPoolTwoJobsSharded runs two jobs concurrently on one pool:
// the fine-grain chain beside the CASPER pipeline, mixed sizes on
// purpose. Reports pool utilization and the backfill share of compute.
func BenchmarkPoolTwoJobsSharded(b *testing.B) {
	var utils, backfill []float64
	for i := 0; i < b.N; i++ {
		p, err := rundown.NewPool(rundown.PoolConfig{
			Workers: 8, Manager: rundown.ShardedManager, DequeCap: 32, Batch: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		chainProg, chainOpt := buildChainFine(b)
		casperProg, casperOpt := buildCasperPipeline(b)
		chainJob, err := p.Submit(chainProg, chainOpt, rundown.PoolJobConfig{Name: "chain"})
		if err != nil {
			b.Fatal(err)
		}
		casperJob, err := p.Submit(casperProg, casperOpt, rundown.PoolJobConfig{Name: "casper"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chainJob.Wait(); err != nil {
			b.Fatal(err)
		}
		if _, err := casperJob.Wait(); err != nil {
			b.Fatal(err)
		}
		rep, err := p.Close()
		if err != nil {
			b.Fatal(err)
		}
		utils = append(utils, rep.Utilization)
		backfill = append(backfill, rep.BackfillShare)
	}
	b.ReportMetric(stats.Percentile(utils, 50), "utilization")
	b.ReportMetric(stats.Percentile(backfill, 50)*100, "backfill-%")
}

// BenchmarkPoolMultiSim prices the tenancy dispatch policy in virtual
// time (the E11 configuration at quick scale): deterministic, so the
// reported utilization is exact rather than host-dependent.
func BenchmarkPoolMultiSim(b *testing.B) {
	benchExperiment(b, "E11", func(t *experiments.Table) (string, float64) {
		return "pool-utilization", cellF(t, 3, 4)
	})
}

// adaptiveOpts turns on the online batch controller for a workload
// builder: DequeCap/Batch become starting values the manager retunes from
// its measured lock-wait and hoarded-idle shares each epoch.
func adaptiveOpts(build func(b *testing.B) (*rundown.Program, rundown.Options)) func(b *testing.B) (*rundown.Program, rundown.Options) {
	return func(b *testing.B) (*rundown.Program, rundown.Options) {
		prog, opt := build(b)
		opt.AdaptiveBatch = true
		return prog, opt
	}
}

func BenchmarkManagerChainFineSerial(b *testing.B) {
	benchManager(b, rundown.SerialManager, buildChainFine)
}

func BenchmarkManagerChainFineSharded(b *testing.B) {
	benchManager(b, rundown.ShardedManager, buildChainFine)
}

// BenchmarkManagerChainFineShardedFaultsOff is the injection-off control:
// the same workload and manager as BenchmarkManagerChainFineSharded, run
// through the fault-aware configuration with an empty campaign (zero
// rules compile to no plan at all). It pins the claim that fault
// injection off costs one nil check per task — this series must sit
// within noise of the plain sharded series above.
func BenchmarkManagerChainFineShardedFaultsOff(b *testing.B) {
	var utils, ratios []float64
	for i := 0; i < b.N; i++ {
		prog, opt := buildChainFine(b)
		cfg := managerBenchConfig(rundown.ShardedManager)
		cfg.Faults = &rundown.FaultSpec{}
		rep, err := rundown.Execute(prog, opt, cfg)
		if err != nil {
			b.Fatal(err)
		}
		utils = append(utils, rep.Utilization)
		ratios = append(ratios, rep.MgmtRatio)
	}
	b.ReportMetric(stats.Percentile(utils, 50), "utilization")
	b.ReportMetric(stats.Percentile(ratios, 50), "compute:mgmt")
}

// BenchmarkManagerChainFineAdaptive / BenchmarkManagerCasperAdaptive are
// the adaptive pair of the manager comparison: the same workloads as the
// fixed-parameter sharded benchmarks with the batch controller turned on,
// so the utilization delta prices what online tuning buys (or costs) on
// this host.
func BenchmarkManagerChainFineAdaptive(b *testing.B) {
	benchManager(b, rundown.ShardedManager, adaptiveOpts(buildChainFine))
}

func BenchmarkManagerCasperAdaptive(b *testing.B) {
	benchManager(b, rundown.ShardedManager, adaptiveOpts(buildCasperPipeline))
}

// BenchmarkManagerChainFineAsync / BenchmarkManagerCasperAsync are the
// async pair of the manager comparison: the dedicated-management-
// goroutine executive on the same workloads as the serial/sharded/
// adaptive series, so BENCH_pr4.json carries all four architectures
// side by side.
func BenchmarkManagerChainFineAsync(b *testing.B) {
	benchManager(b, rundown.AsyncManager, buildChainFine)
}

func BenchmarkManagerCasperAsync(b *testing.B) {
	benchManager(b, rundown.AsyncManager, buildCasperPipeline)
}

func BenchmarkManagerCheckerboardAsync(b *testing.B) {
	benchManager(b, rundown.AsyncManager, buildCheckerboard)
}

// BenchmarkRunnerChainFineSharded runs the fine-grain chain through the
// Runner front door (New + Run with a context) instead of the legacy
// Execute wrapper — compare against BenchmarkManagerChainFineSharded to
// see what the unified entry point costs, which must be nothing
// measurable: the Runner resolves options once and delegates to the same
// executive.RunContext.
func BenchmarkRunnerChainFineSharded(b *testing.B) {
	runner, err := rundown.New(
		rundown.WithWorkers(8), rundown.WithManager(rundown.ShardedManager),
		rundown.WithDequeCap(32), rundown.WithBatch(16),
	)
	if err != nil {
		b.Fatal(err)
	}
	var utils []float64
	for i := 0; i < b.N; i++ {
		prog, opt := buildChainFine(b)
		rep, err := runner.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
		if err != nil {
			b.Fatal(err)
		}
		utils = append(utils, rep.Utilization)
	}
	b.ReportMetric(stats.Percentile(utils, 50), "utilization")
}

// BenchmarkTraceRecordChainFine measures what the flight recorder costs
// on the hottest dispatch path: the fine-grain chain under the sharded
// manager (8 workers, one trace record per dispatch and per completion),
// traced versus untraced. The "off" variant doubles as the tracing-off
// fast-path guard — it runs the same Runner code with the recorder nil,
// and must stay within noise of BenchmarkManagerChainFineSharded.
func BenchmarkTraceRecordChainFine(b *testing.B) {
	run := func(b *testing.B, opts ...rundown.Option) {
		runner, err := rundown.New(append([]rundown.Option{
			rundown.WithWorkers(8), rundown.WithManager(rundown.ShardedManager),
			rundown.WithDequeCap(32), rundown.WithBatch(16),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		var events []float64
		for i := 0; i < b.N; i++ {
			prog, opt := buildChainFine(b)
			rep, err := runner.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Trace != nil {
				events = append(events, float64(rep.Trace.Len()))
			}
		}
		if len(events) > 0 {
			b.ReportMetric(stats.Percentile(events, 50), "events")
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("on", func(b *testing.B) { run(b, rundown.WithTrace(nil)) })
}

// BenchmarkMetricsChainFine measures what unified telemetry costs on the
// hottest dispatch path: the fine-grain chain under the sharded manager,
// metered versus unmetered. Recording is per-worker sharded counters plus
// one histogram observation per dispatch (the fine path adds one clock
// read), so the "on" series must sit within noise of "off" — the
// metrics-off fast-path guard, the telemetry analogue of
// BenchmarkTraceRecordChainFine.
func BenchmarkMetricsChainFine(b *testing.B) {
	run := func(b *testing.B, opts ...rundown.Option) {
		runner, err := rundown.New(append([]rundown.Option{
			rundown.WithWorkers(8), rundown.WithManager(rundown.ShardedManager),
			rundown.WithDequeCap(32), rundown.WithBatch(16),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		var utils []float64
		for i := 0; i < b.N; i++ {
			prog, opt := buildChainFine(b)
			rep, err := runner.Run(context.Background(), rundown.Job{Prog: prog, Opt: opt})
			if err != nil {
				b.Fatal(err)
			}
			utils = append(utils, rep.Utilization)
			if rep.Metrics != nil && i == 0 {
				if d := rep.Metrics.Get("rundown_dispatch_total"); d != nil {
					b.ReportMetric(float64(d.Value), "dispatches")
				}
			}
		}
		b.ReportMetric(stats.Percentile(utils, 50), "utilization")
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("on", func(b *testing.B) { run(b, rundown.WithMetrics()) })
}

func BenchmarkManagerCasperSerial(b *testing.B) {
	benchManager(b, rundown.SerialManager, buildCasperPipeline)
}

func BenchmarkManagerCasperSharded(b *testing.B) {
	benchManager(b, rundown.ShardedManager, buildCasperPipeline)
}

func BenchmarkManagerCheckerboardSerial(b *testing.B) {
	benchManager(b, rundown.SerialManager, buildCheckerboard)
}

func BenchmarkManagerCheckerboardSharded(b *testing.B) {
	benchManager(b, rundown.ShardedManager, buildCheckerboard)
}
