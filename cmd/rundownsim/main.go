// Command rundownsim runs one discrete-event simulation of a phase chain
// or the CASPER profile under configurable scheduling policy, and prints
// utilization, makespan, the computation-to-management ratio, per-phase
// rundown windows, and optionally an ASCII Gantt chart and utilization
// sparkline.
//
// Examples:
//
//	rundownsim -mapping identity -phases 4 -granules 4096 -procs 64 -overlap
//	rundownsim -casper -procs 32 -overlap -gantt
//	rundownsim -mapping seam -granules 8192 -procs 128 -overlap -grain 16
//	rundownsim -mapping identity -granules 8192 -procs 64 -overlap -grain 1 -manager sharded
//	rundownsim -mapping identity -granules 8192 -procs 16 -overlap -grain 1 -adaptive
//	rundownsim -mapping identity -granules 8192 -procs 16 -overlap -grain 1 -manager async -ready 32
//	rundownsim -mapping identity -granules 8192 -procs 32 -overlap -observe
//	rundownsim -jobs 3 -mapping identity -granules 4096 -procs 64 -overlap
//	rundownsim -jobs 2 -manager async -mapping identity -granules 4096 -procs 8 -overlap
//	rundownsim -jobs 4 -adaptive -mapping identity -granules 4096 -procs 32 -overlap
//	rundownsim -jobs 3 -mapping identity -granules 4096 -procs 32 -overlap -faults seed=7,rules=4 -retry 2
//
// The command is built on the rundown.Runner front door: one Job spec,
// one Run/RunAll call, and the backend — virtual machine, goroutine
// executive, or tenant pool — is chosen by options. With -jobs N
// (N >= 2), N copies of the configured workload (differing seeds) share
// one machine under the multi-tenant pool's overlap-first dispatch
// policy, priced in virtual time under every management model — the
// async ready buffer and the adaptive batch controller included. (Were a
// model ever to lose virtual multi-program pricing, Capabilities'
// VirtualMulti gate would route the jobs to the real goroutine tenant
// pool instead.) -observe streams live utilization/overhead snapshots to
// stderr, and Ctrl-C cancels the run through the Runner's context.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rundown "repro"
	"repro/internal/cliflags"
	"repro/internal/enable"
	"repro/internal/metrics"
)

func main() {
	var (
		mapping    = flag.String("mapping", "identity", "mapping kind: null|universal|identity|forward|reverse|seam")
		phases     = flag.Int("phases", 3, "number of phases in the chain")
		granules   = flag.Int("granules", 4096, "granules per phase")
		procs      = flag.Int("procs", 32, "processor count")
		grain      = flag.Int("grain", 0, "granules per task (0 = 2 tasks/processor default)")
		overlap    = flag.Bool("overlap", false, "enable phase overlap")
		elevate    = flag.Bool("elevate", true, "elevate enabling granules for indirect mappings")
		released   = flag.Bool("released-ahead", false, "release successor work ahead of current work (PAX conflict priority)")
		presplit   = flag.Bool("presplit", false, "pre-split descriptions at activation")
		inline     = flag.Bool("inline-maps", false, "build composite maps inline (the paper's warned-about strategy)")
		dedicated  = flag.Bool("dedicated", false, "dedicated executive processor (default: steals a worker)")
		costLo     = flag.Int64("cost-lo", 100, "minimum granule cost")
		costHi     = flag.Int64("cost-hi", 400, "maximum granule cost")
		seed       = flag.Uint64("seed", 1986, "workload seed")
		jobs       = flag.Int("jobs", 1, "number of identical-shape jobs sharing the machine (>= 2 selects the multi-tenant pool)")
		casper     = flag.Bool("casper", false, "run the CASPER 22-phase census profile instead of a chain")
		cycles     = flag.Int("cycles", 1, "CASPER profile cycles")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart (small runs only)")
		curve      = flag.Bool("curve", true, "print a utilization sparkline")
		observe    = flag.Bool("observe", false, "stream live utilization/overhead snapshots to stderr while the run progresses")
		faultsIn   = flag.String("faults", "", "deterministic fault campaign: seed=N[,rules=K] (same seed, same faults, every backend)")
		retry      = flag.Int("retry", 0, "per-job retry budget for faulted attempts (multi-job runs)")
		metricsOut = flag.Bool("metrics", false, "record unified telemetry and print the run's metric dump")
		metricsAt  = flag.String("metrics-listen", "", "serve the metrics registry in Prometheus text format at this address (implies -metrics; the endpoint stays live after the run until Ctrl-C)")
		traceOut   = flag.String("trace", "", "record the run's flight-recorder trace to this file")
		replayIn   = flag.String("replay", "", "replay a recorded trace file against the configured workload and exit")
		tracediff  = flag.Bool("tracediff", false, "diff the two trace files given as positional arguments and exit")
	)
	exec := cliflags.Register(flag.CommandLine, "serial",
		"management layer: "+cliflags.ManagerNames()+" (serial prices per -dedicated)")
	flag.Parse()

	// Ctrl-C or SIGTERM cancels the run cooperatively through the
	// Runner's context (and gracefully drains -metrics-listen).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *tracediff {
		if flag.NArg() != 2 {
			fail("-tracediff needs exactly two trace files, got %d", flag.NArg())
		}
		runTraceDiff(flag.Arg(0), flag.Arg(1))
		return
	}

	build := func(seed uint64) (*rundown.Program, error) {
		if *casper {
			return rundown.CasperProgram(rundown.CasperConfig{
				GranulesPerLine: (*granules + 1187) / 1188,
				Cycles:          *cycles,
				Cost:            rundown.UniformCost(rundown.Cost(*costLo), rundown.Cost(*costHi), seed),
				SerialCost:      100,
				Seed:            seed,
			})
		}
		kind, err := enable.ParseKind(*mapping)
		if err != nil {
			return nil, err
		}
		return rundown.Chain(kind, *phases, *granules,
			rundown.UniformCost(rundown.Cost(*costLo), rundown.Cost(*costHi), seed), seed)
	}
	prog, err := build(*seed)
	if err != nil {
		fail("%v", err)
	}

	opt := rundown.Options{
		Grain:         *grain,
		Overlap:       *overlap,
		Elevate:       *elevate,
		ReleasedAhead: *released,
		InlineMaps:    *inline,
		Costs:         rundown.DefaultCosts(),
	}
	if *presplit {
		opt.Split = rundown.SplitPre
	}

	if *replayIn != "" {
		runReplay(*replayIn, prog, opt)
		return
	}

	execOpts, err := exec.Options(*dedicated)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(2)
	}
	if *observe {
		execOpts = append(execOpts, rundown.WithObserver(printSnapshot))
	}

	// -faults: derive a reproducible campaign from the seed, shaped to
	// this run, and thread it through the Runner — the virtual backend
	// prices it deterministically, so identical flags reproduce identical
	// failures. -retry gives each job a budget to survive them.
	if *faultsIn != "" {
		fseed, frules, err := rundown.ParseFaultFlag(*faultsIn)
		if err != nil {
			fail("%v", err)
		}
		spec := rundown.FaultScenario(fseed, frules, *jobs, *phases, *granules, *procs)
		execOpts = append(execOpts, rundown.WithFaults(spec))
		fmt.Fprintf(os.Stderr, "rundownsim: fault campaign seed=%d rules=%d\n", fseed, len(spec.Rules))
	}
	if *retry > 0 {
		execOpts = append(execOpts, rundown.WithRetry(*retry, time.Millisecond))
	}

	// -metrics / -metrics-listen: arm unified telemetry. The listen form
	// records into a caller-owned registry mounted at /metrics so the
	// Prometheus endpoint observes the run live and keeps serving the
	// closing totals after it — the CI smoke test curls it; Ctrl-C exits.
	showMetrics := *metricsOut || *metricsAt != ""
	waitMetrics := func() {}
	if *metricsAt != "" {
		reg := rundown.NewMetricsRegistry(*procs, "virtual")
		execOpts = append(execOpts, rundown.WithMetricsRegistry(reg))
		ln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			fail("%v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "rundownsim: serving metrics at http://%s/metrics\n", ln.Addr())
		waitMetrics = func() {
			fmt.Fprintln(os.Stderr, "rundownsim: metrics endpoint live; Ctrl-C or SIGTERM to exit")
			<-ctx.Done()
			// Graceful drain: let an in-flight scrape finish before the
			// listener dies, bounded so a stuck client cannot hold exit.
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(shCtx); err != nil {
				_ = srv.Close()
			}
		}
	} else if *metricsOut {
		execOpts = append(execOpts, rundown.WithMetrics())
	}

	// -trace: record the run's flight recorder to a file. The writer is
	// handed to the Runner via WithTrace; closeTrace flushes it after the
	// run path completes.
	closeTrace := func() {}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		execOpts = append(execOpts, rundown.WithTrace(f))
		closeTrace = func() {
			if err := f.Close(); err != nil {
				fail("closing trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "rundownsim: trace written to %s\n", *traceOut)
		}
	}

	if *jobs >= 2 {
		runShared(ctx, build, opt, execOpts, *jobs, *procs, *seed, showMetrics)
		closeTrace()
		waitMetrics()
		return
	}

	runner, err := rundown.New(append(execOpts,
		rundown.WithWorkers(*procs),
		rundown.WithVirtualTime(rundown.SimConfig{Procs: *procs, Gantt: *gantt}),
	)...)
	if err != nil {
		fail("%v", err)
	}
	rep, err := runner.Run(ctx, rundown.Job{Prog: prog, Opt: opt})
	if err != nil {
		fail("%v", err)
	}
	res := rep.Sim

	fmt.Printf("phases=%d granules=%d procs=%d workers=%d overlap=%v mgmt=%v\n",
		len(prog.Phases), prog.TotalGranules(), res.Procs, res.Workers, *overlap, rep.Model)
	fmt.Printf("makespan            %d\n", res.Makespan)
	fmt.Printf("compute units       %d\n", res.ComputeUnits)
	fmt.Printf("management units    %d\n", res.MgmtUnits)
	fmt.Printf("serial units        %d\n", res.SerialUnits)
	fmt.Printf("idle units          %d\n", res.IdleUnits)
	fmt.Printf("utilization         %s\n", metrics.FormatPercent(res.Utilization))
	fmt.Printf("worker utilization  %s\n", metrics.FormatPercent(res.WorkerUtilization))
	fmt.Printf("compute:management  %.1f\n", res.MgmtRatio)
	if exec.Adaptive {
		fmt.Printf("batch (final)       %d (%d controller changes)\n", res.Batch, res.BatchChanges)
	}
	fmt.Printf("dispatches=%d splits=%d releases=%d elevations=%d deferred=%d\n",
		res.Sched.Dispatches, res.Sched.Splits, res.Sched.Releases,
		res.Sched.Elevations, res.Sched.DeferredItems)

	fmt.Println("\nper-phase:")
	for i, pt := range res.Phases {
		rd := "-"
		if pt.RundownStart >= 0 {
			rd = fmt.Sprint(pt.RundownStart)
		}
		fmt.Printf("  %2d %-24s window=[%d,%d] rundown-at=%s idle=%d overlap-fill=%d\n",
			i, pt.Name, pt.Start, pt.End, rd, pt.IdleUnits, pt.OverlapUnits)
	}

	if *curve {
		fmt.Printf("\nutilization curve (bucket=%d):\n%s\n",
			res.Timeline.BucketWidth(), metrics.Sparkline(res.Timeline.Curve()))
	}
	if *gantt && res.Gantt != nil {
		fmt.Printf("\n%s", res.Gantt.Render(100))
	}
	printMetrics(rep, showMetrics)
	closeTrace()
	waitMetrics()
}

// printMetrics prints the run's telemetry dump when -metrics (or
// -metrics-listen) was given and the run produced one.
func printMetrics(rep *rundown.Report, show bool) {
	if show && rep != nil && rep.Metrics != nil {
		fmt.Printf("\n%s", rundown.FormatMetrics(rep.Metrics))
	}
}

// runReplay re-executes a recorded trace against the workload the flags
// describe (the program and options must match the recorded run's) and
// prints the rebuilt virtual timeline and conservation totals.
func runReplay(path string, prog *rundown.Program, opt rundown.Options) {
	tr, err := rundown.ReadTraceFile(path)
	if err != nil {
		fail("%v", err)
	}
	res, err := rundown.ReplayTrace(prog, opt, tr)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("replay of %s: backend=%s manager=%s model=%s\n",
		path, tr.Meta.Backend, tr.Meta.Manager, tr.Meta.Model)
	fmt.Printf("procs               %d\n", res.Procs)
	fmt.Printf("dispatches          %d\n", res.Dispatches)
	fmt.Printf("granules            %d\n", res.Granules)
	fmt.Printf("makespan (virtual)  %d\n", res.Makespan)
	fmt.Printf("utilization         %s\n", metrics.FormatPercent(res.Utilization))
	fmt.Println("\nper-phase granules:")
	for pi, g := range res.PhaseGranules {
		fmt.Printf("  %2d %-24s %d\n", pi, prog.Phases[pi].Name, g)
	}
}

// runTraceDiff aligns two recorded traces and prints the first
// divergence, if any, plus per-phase busy/utilization deltas.
func runTraceDiff(pathA, pathB string) {
	a, err := rundown.ReadTraceFile(pathA)
	if err != nil {
		fail("%s: %v", pathA, err)
	}
	b, err := rundown.ReadTraceFile(pathB)
	if err != nil {
		fail("%s: %v", pathB, err)
	}
	d := rundown.DiffTraces(a, b)
	fmt.Printf("diff %s vs %s\n", pathA, pathB)
	d.Format(os.Stdout)
	if !d.Identical {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rundownsim: "+format+"\n", args...)
	os.Exit(1)
}

// printSnapshot is the -observe stream: one stderr line per live
// snapshot, wall-clock or virtual-time depending on the backend.
func printSnapshot(s rundown.Snapshot) {
	when := fmt.Sprintf("t=%d", s.VirtualTime)
	if s.Backend != rundown.VirtualBackend {
		when = fmt.Sprintf("t=%v", s.Elapsed.Round(100*time.Microsecond))
	}
	mark := ""
	if s.Final {
		mark = " (final)"
	}
	fmt.Fprintf(os.Stderr, "observe[%v] %-14s tasks=%-7d jobs=%d util=%.3f overhead=%.4f%s\n",
		s.Backend, when, s.Tasks, s.Jobs, s.Utilization, s.OverheadShare, mark)
}

// runShared runs jobs copies of the workload (differing seeds) sharing
// one machine through Runner.RunAll: in virtual time when the selected
// management model supports multi-program pricing (every current model
// does), otherwise on the real goroutine tenant pool — the capability is
// checked statically via Capabilities instead of tripping
// ErrUnsupportedMgmt at run time.
func runShared(ctx context.Context, build func(seed uint64) (*rundown.Program, error),
	opt rundown.Options, execOpts []rundown.Option, jobs, procs int, seed uint64, showMetrics bool) {
	specs := make([]rundown.Job, jobs)
	for i := range specs {
		prog, err := build(seed + uint64(i))
		if err != nil {
			fail("job %d: %v", i, err)
		}
		specs[i] = rundown.Job{Name: fmt.Sprintf("job%d", i), Prog: prog, Opt: opt}
	}

	virtual, err := rundown.New(append(execOpts,
		rundown.WithWorkers(procs),
		rundown.WithVirtualTime(rundown.SimConfig{Procs: procs}),
	)...)
	if err != nil {
		fail("%v", err)
	}
	if !virtual.Capabilities().VirtualMulti {
		// The virtual multi-program queue cannot price this model; run the
		// jobs on the real goroutine tenant pool end-to-end instead.
		runPool(ctx, specs, execOpts, procs, showMetrics)
		return
	}

	rep, err := virtual.RunAll(ctx, specs)
	if err != nil && rep == nil {
		fail("%v", err)
	}
	// A failed job under an injected campaign still has a full report:
	// print every tenant's outcome first, then exit nonzero.
	res := rep.SimMulti
	fmt.Printf("jobs=%d procs=%d workers=%d mgmt=%v\n", jobs, res.Procs, res.Workers, rep.Model)
	fmt.Printf("makespan (all jobs) %d\n", res.Makespan)
	fmt.Printf("compute units       %d\n", res.ComputeUnits)
	fmt.Printf("management units    %d\n", res.MgmtUnits)
	fmt.Printf("idle units          %d\n", res.IdleUnits)
	fmt.Printf("backfill units      %d\n", res.BackfillUnits)
	fmt.Printf("utilization         %s\n", metrics.FormatPercent(res.Utilization))
	if rep.Faults > 0 || rep.Retries > 0 {
		fmt.Printf("faults injected     %d (retries %d)\n", rep.Faults, rep.Retries)
	}
	if res.Batch > 0 {
		fmt.Printf("batch (final)       %d (%d controller changes)\n", res.Batch, res.BatchChanges)
	}

	fmt.Println("\nper-job:")
	for _, j := range res.Jobs {
		share := 0.0
		if j.ComputeUnits > 0 {
			share = float64(j.BackfillUnits) / float64(j.ComputeUnits)
		}
		note := ""
		if j.Attempts > 1 {
			note = fmt.Sprintf(" attempts=%d", j.Attempts)
		}
		if j.Err != nil {
			note += fmt.Sprintf(" FAILED: %v", j.Err)
		}
		fmt.Printf("  %-8s makespan=%-10d compute=%-10d home-workers=%-3d backfill=%d (%.1f%%)%s\n",
			j.Name, j.Makespan, j.ComputeUnits, j.HomeWorkers, j.BackfillUnits, share*100, note)
	}
	printMetrics(rep, showMetrics)
	if err != nil {
		fail("%v", err)
	}
}

// runPool runs the job specs on the real goroutine tenant pool
// (wall-clock execution through RunAll). Chain programs carry no Work
// functions, so this is a pure scheduling run — the management
// architecture exercised end-to-end without synthetic compute.
func runPool(ctx context.Context, specs []rundown.Job, execOpts []rundown.Option, procs int, showMetrics bool) {
	runner, err := rundown.New(append(execOpts,
		rundown.WithWorkers(procs), rundown.WithPool(),
	)...)
	if err != nil {
		fail("%v", err)
	}
	rep, err := runner.RunAll(ctx, specs)
	if err != nil {
		fail("%v", err)
	}
	pool := rep.Pool

	fmt.Printf("jobs=%d workers=%d manager=%v (goroutine tenant pool, wall-clock)\n",
		len(specs), procs, rep.Manager)
	fmt.Printf("pool wall           %v\n", pool.Wall)
	fmt.Printf("pool mgmt           %v\n", pool.Mgmt)
	fmt.Printf("pool idle           %v\n", pool.Idle)
	fmt.Printf("tasks               %d\n", pool.Tasks)
	fmt.Printf("backfill tasks      %d (%.1f%% of compute)\n", pool.BackfillTasks, pool.BackfillShare*100)

	fmt.Println("\nper-job:")
	for i, j := range rep.Jobs {
		fmt.Printf("  job%-5d wall=%-12v tasks=%-6d mgmt=%-12v dispatches=%d\n",
			i, j.Exec.Wall, j.Exec.Tasks, j.Exec.Mgmt, j.Exec.Sched.Dispatches)
	}
	printMetrics(rep, showMetrics)
}
