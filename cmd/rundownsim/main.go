// Command rundownsim runs one discrete-event simulation of a phase chain
// or the CASPER profile under configurable scheduling policy, and prints
// utilization, makespan, the computation-to-management ratio, per-phase
// rundown windows, and optionally an ASCII Gantt chart and utilization
// sparkline.
//
// Examples:
//
//	rundownsim -mapping identity -phases 4 -granules 4096 -procs 64 -overlap
//	rundownsim -casper -procs 32 -overlap -gantt
//	rundownsim -mapping seam -granules 8192 -procs 128 -overlap -grain 16
//	rundownsim -mapping identity -granules 8192 -procs 64 -overlap -grain 1 -manager sharded
//	rundownsim -mapping identity -granules 8192 -procs 16 -overlap -grain 1 -adaptive
//	rundownsim -mapping identity -granules 8192 -procs 16 -overlap -grain 1 -manager async -ready 32
//	rundownsim -jobs 3 -mapping identity -granules 4096 -procs 64 -overlap
//	rundownsim -jobs 2 -manager async -mapping identity -granules 4096 -procs 8 -overlap
//
// With -jobs N (N >= 2), N copies of the configured workload (differing
// seeds) share one machine under the multi-tenant pool's overlap-first
// dispatch policy, and the report shows per-job makespans plus the
// pool-level utilization and cross-job backfill. With -manager async the
// multi-job run executes on the real goroutine tenant pool (one dedicated
// management goroutine per job driving the PoolDriver surface end-to-end)
// instead of the virtual-time queue, which does not price the async model.
package main

import (
	"flag"
	"fmt"
	"os"

	rundown "repro"
	"repro/internal/enable"
	"repro/internal/metrics"
)

func main() {
	var (
		mapping   = flag.String("mapping", "identity", "mapping kind: null|universal|identity|forward|reverse|seam")
		phases    = flag.Int("phases", 3, "number of phases in the chain")
		granules  = flag.Int("granules", 4096, "granules per phase")
		procs     = flag.Int("procs", 32, "processor count")
		grain     = flag.Int("grain", 0, "granules per task (0 = 2 tasks/processor default)")
		overlap   = flag.Bool("overlap", false, "enable phase overlap")
		elevate   = flag.Bool("elevate", true, "elevate enabling granules for indirect mappings")
		released  = flag.Bool("released-ahead", false, "release successor work ahead of current work (PAX conflict priority)")
		presplit  = flag.Bool("presplit", false, "pre-split descriptions at activation")
		inline    = flag.Bool("inline-maps", false, "build composite maps inline (the paper's warned-about strategy)")
		dedicated = flag.Bool("dedicated", false, "dedicated executive processor (default: steals a worker)")
		manager   = flag.String("manager", "serial", "management layer: serial (one executive, per -dedicated), sharded (per-worker management lanes), or async (dedicated management processor with a ready-buffer)")
		adaptive  = flag.Bool("adaptive", false, "batched executive model (worker-local buffers, Acquire-priced lock visits) with online batch tuning")
		batch     = flag.Int("batch", 16, "refill batch for -adaptive (the controller's starting point)")
		ready     = flag.Int("ready", 0, "ready-buffer bound for -manager async (0 = 2*workers, min 8)")
		lowWater  = flag.Int("low-water", 0, "deferred-overlap low-water mark for -manager async (0 = ready/4)")
		costLo    = flag.Int64("cost-lo", 100, "minimum granule cost")
		costHi    = flag.Int64("cost-hi", 400, "maximum granule cost")
		seed      = flag.Uint64("seed", 1986, "workload seed")
		jobs      = flag.Int("jobs", 1, "number of identical-shape jobs sharing the machine (>= 2 selects the multi-tenant pool)")
		casper    = flag.Bool("casper", false, "run the CASPER 22-phase census profile instead of a chain")
		cycles    = flag.Int("cycles", 1, "CASPER profile cycles")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart (small runs only)")
		curve     = flag.Bool("curve", true, "print a utilization sparkline")
	)
	flag.Parse()

	build := func(seed uint64) (*rundown.Program, error) {
		if *casper {
			return rundown.CasperProgram(rundown.CasperConfig{
				GranulesPerLine: (*granules + 1187) / 1188,
				Cycles:          *cycles,
				Cost:            rundown.UniformCost(rundown.Cost(*costLo), rundown.Cost(*costHi), seed),
				SerialCost:      100,
				Seed:            seed,
			})
		}
		kind, err := enable.ParseKind(*mapping)
		if err != nil {
			return nil, err
		}
		return rundown.Chain(kind, *phases, *granules,
			rundown.UniformCost(rundown.Cost(*costLo), rundown.Cost(*costHi), seed), seed)
	}
	prog, err := build(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(1)
	}

	opt := rundown.Options{
		Grain:         *grain,
		Overlap:       *overlap,
		Elevate:       *elevate,
		ReleasedAhead: *released,
		InlineMaps:    *inline,
		Costs:         rundown.DefaultCosts(),
	}
	if *presplit {
		opt.Split = rundown.SplitPre
	}
	model := rundown.StealsWorker
	if *dedicated {
		model = rundown.Dedicated
	}
	switch *manager {
	case "serial":
		// model chosen above
	case "sharded":
		if *dedicated {
			fmt.Fprintln(os.Stderr, "rundownsim: -dedicated conflicts with -manager sharded (management runs inline on the workers)")
			os.Exit(2)
		}
		model = rundown.ShardedMgmt
	case "async":
		if *dedicated {
			fmt.Fprintln(os.Stderr, "rundownsim: -dedicated is redundant with -manager async (the async executive is the dedicated processor, extended with the ready-buffer)")
			os.Exit(2)
		}
		model = rundown.AsyncMgmt
	default:
		fmt.Fprintf(os.Stderr, "rundownsim: unknown -manager %q (serial|sharded|async)\n", *manager)
		os.Exit(2)
	}
	if *adaptive {
		if *dedicated {
			fmt.Fprintln(os.Stderr, "rundownsim: -dedicated conflicts with -adaptive (management runs inline on the workers)")
			os.Exit(2)
		}
		managerSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "manager" {
				managerSet = true
			}
		})
		if managerSet {
			fmt.Fprintln(os.Stderr, "rundownsim: -manager conflicts with -adaptive (the adaptive model is its own management layer)")
			os.Exit(2)
		}
		if *jobs >= 2 {
			fmt.Fprintln(os.Stderr, "rundownsim: -adaptive is single-program only (drop -jobs)")
			os.Exit(2)
		}
		model = rundown.AdaptiveMgmt
		opt.AdaptiveBatch = true
	}
	if *jobs >= 2 {
		if model == rundown.AsyncMgmt {
			// The virtual-time multi-program queue does not price the
			// async model (sim.ErrUnsupportedMgmt); run the jobs on the
			// real goroutine tenant pool instead — one dedicated
			// management goroutine per job, PoolDriver end-to-end.
			runPoolAsync(build, opt, *jobs, *procs, *ready, *lowWater, *seed)
			return
		}
		runMulti(build, opt, model, *jobs, *procs, *seed)
		return
	}

	res, err := rundown.Simulate(prog, opt, rundown.SimConfig{
		Procs: *procs, Mgmt: model, Gantt: *gantt, Batch: *batch,
		ReadyCap: *ready, LowWater: *lowWater,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("phases=%d granules=%d procs=%d workers=%d overlap=%v mgmt=%v\n",
		len(prog.Phases), prog.TotalGranules(), res.Procs, res.Workers, *overlap, model)
	fmt.Printf("makespan            %d\n", res.Makespan)
	fmt.Printf("compute units       %d\n", res.ComputeUnits)
	fmt.Printf("management units    %d\n", res.MgmtUnits)
	fmt.Printf("serial units        %d\n", res.SerialUnits)
	fmt.Printf("idle units          %d\n", res.IdleUnits)
	fmt.Printf("utilization         %s\n", metrics.FormatPercent(res.Utilization))
	fmt.Printf("worker utilization  %s\n", metrics.FormatPercent(res.WorkerUtilization))
	fmt.Printf("compute:management  %.1f\n", res.MgmtRatio)
	if *adaptive {
		fmt.Printf("batch (final)       %d (%d controller changes)\n", res.Batch, res.BatchChanges)
	}
	fmt.Printf("dispatches=%d splits=%d releases=%d elevations=%d deferred=%d\n",
		res.Sched.Dispatches, res.Sched.Splits, res.Sched.Releases,
		res.Sched.Elevations, res.Sched.DeferredItems)

	fmt.Println("\nper-phase:")
	for i, pt := range res.Phases {
		rd := "-"
		if pt.RundownStart >= 0 {
			rd = fmt.Sprint(pt.RundownStart)
		}
		fmt.Printf("  %2d %-24s window=[%d,%d] rundown-at=%s idle=%d overlap-fill=%d\n",
			i, pt.Name, pt.Start, pt.End, rd, pt.IdleUnits, pt.OverlapUnits)
	}

	if *curve {
		fmt.Printf("\nutilization curve (bucket=%d):\n%s\n",
			res.Timeline.BucketWidth(), metrics.Sparkline(res.Timeline.Curve()))
	}
	if *gantt && res.Gantt != nil {
		fmt.Printf("\n%s", res.Gantt.Render(100))
	}
}

// runPoolAsync runs jobs copies of the workload (differing seeds) on the
// real goroutine tenant pool under per-job async managers: wall-clock
// execution through the PoolDriver surface, since the virtual-time
// multi-program queue does not price the async model. Chain programs
// carry no Work functions, so this is a pure scheduling run — the
// management architecture exercised end-to-end without synthetic compute.
func runPoolAsync(build func(seed uint64) (*rundown.Program, error), opt rundown.Options,
	jobs, procs, ready, lowWater int, seed uint64) {
	pool, err := rundown.NewPool(rundown.PoolConfig{
		Workers: procs, Manager: rundown.AsyncManager, ReadyCap: ready, LowWater: lowWater,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(1)
	}
	handles := make([]*rundown.PoolJob, jobs)
	for i := range handles {
		prog, err := build(seed + uint64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rundownsim: job %d: %v\n", i, err)
			os.Exit(1)
		}
		h, err := pool.Submit(prog, opt, rundown.PoolJobConfig{Name: fmt.Sprintf("job%d", i)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rundownsim: job %d: %v\n", i, err)
			os.Exit(1)
		}
		handles[i] = h
	}
	reps := make([]*rundown.ExecReport, jobs)
	for i, h := range handles {
		rep, err := h.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rundownsim: job %d: %v\n", i, err)
			os.Exit(1)
		}
		reps[i] = rep
	}
	rep, err := pool.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("jobs=%d workers=%d manager=async (goroutine tenant pool, wall-clock)\n", jobs, procs)
	fmt.Printf("pool wall           %v\n", rep.Wall)
	fmt.Printf("pool mgmt           %v\n", rep.Mgmt)
	fmt.Printf("pool idle           %v\n", rep.Idle)
	fmt.Printf("tasks               %d\n", rep.Tasks)
	fmt.Printf("backfill tasks      %d (%.1f%% of compute)\n", rep.BackfillTasks, rep.BackfillShare*100)

	fmt.Println("\nper-job:")
	for i, r := range reps {
		fmt.Printf("  job%-5d wall=%-12v tasks=%-6d mgmt=%-12v dispatches=%d\n",
			i, r.Wall, r.Tasks, r.Mgmt, r.Sched.Dispatches)
	}
}

// runMulti shares the machine between jobs copies of the workload
// (differing seeds) under the tenant pool's dispatch policy and prints
// per-job makespans plus the pool aggregates.
func runMulti(build func(seed uint64) (*rundown.Program, error), opt rundown.Options,
	model rundown.MgmtModel, jobs, procs int, seed uint64) {
	specs := make([]rundown.SimJob, jobs)
	for i := range specs {
		prog, err := build(seed + uint64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rundownsim: job %d: %v\n", i, err)
			os.Exit(1)
		}
		specs[i] = rundown.SimJob{Name: fmt.Sprintf("job%d", i), Prog: prog, Opt: opt}
	}
	res, err := rundown.SimulateMulti(specs, rundown.SimConfig{Procs: procs, Mgmt: model})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rundownsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("jobs=%d procs=%d workers=%d mgmt=%v\n", jobs, res.Procs, res.Workers, model)
	fmt.Printf("makespan (all jobs) %d\n", res.Makespan)
	fmt.Printf("compute units       %d\n", res.ComputeUnits)
	fmt.Printf("management units    %d\n", res.MgmtUnits)
	fmt.Printf("idle units          %d\n", res.IdleUnits)
	fmt.Printf("backfill units      %d\n", res.BackfillUnits)
	fmt.Printf("utilization         %s\n", metrics.FormatPercent(res.Utilization))

	fmt.Println("\nper-job:")
	for _, j := range res.Jobs {
		share := 0.0
		if j.ComputeUnits > 0 {
			share = float64(j.BackfillUnits) / float64(j.ComputeUnits)
		}
		fmt.Printf("  %-8s makespan=%-10d compute=%-10d home-workers=%-3d backfill=%d (%.1f%%)\n",
			j.Name, j.Makespan, j.ComputeUnits, j.HomeWorkers, j.BackfillUnits, share*100)
	}
}
