// Command experiments regenerates every quantitative claim of Jones (1986)
// — the E1..E13 experiment suite indexed in DESIGN.md — and prints the
// result tables. EXPERIMENTS.md is produced from this tool's -md output at
// -scale full.
//
// The executive-selection flags (-manager, -adaptive, -ready, -low-water,
// -batch) are the shared set from internal/cliflags, identical to
// cmd/rundownsim's; -manager additionally accepts "both" to run the
// manager comparisons head-to-head.
//
// Usage:
//
//	experiments [-scale quick|full] [-only E3] [-md] [-manager serial|sharded|async|both] [-adaptive]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	only := flag.String("only", "", "run a single experiment (e.g. E3)")
	md := flag.Bool("md", false, "emit markdown tables instead of aligned text")
	exec := cliflags.Register(flag.CommandLine, "both",
		"executive manager filter for E10/E13: "+cliflags.ManagerNames()+
			", or both (E10 compares serial/sharded; E13 adds async)")
	flag.Parse()

	// The filter accepts the shared manager names (case-insensitive, via
	// the same parser the Runner options use) plus "both".
	filter := strings.ToLower(strings.TrimSpace(exec.Manager))
	if filter != "both" && filter != "" {
		kind, err := exec.Kind()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		filter = kind.String()
	}
	if err := experiments.SetManagerFilter(filter); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	experiments.SetAdaptive(exec.Adaptive)
	experiments.SetExecKnobs(exec.Ready, exec.LowWater, exec.Batch)

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}

	ran := 0
	for _, spec := range experiments.All() {
		if *only != "" && spec.ID != *only {
			continue
		}
		ran++
		tbl, err := spec.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}
