// Command experiments regenerates every quantitative claim of Jones (1986)
// — the E1..E8 experiment suite indexed in DESIGN.md — and prints the
// result tables. EXPERIMENTS.md is produced from this tool's -md output at
// -scale full.
//
// Usage:
//
//	experiments [-scale quick|full] [-only E3] [-md] [-manager serial|sharded|async|both] [-adaptive]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	only := flag.String("only", "", "run a single experiment (e.g. E3)")
	md := flag.Bool("md", false, "emit markdown tables instead of aligned text")
	manager := flag.String("manager", "both", "executive manager filter for E10/E13: serial, sharded, async, or both (E10 compares serial/sharded; E13 adds async)")
	adaptive := flag.Bool("adaptive", false, "add the sharded+adaptive arm to E10 (E12 always sweeps adaptive batching)")
	flag.Parse()

	if err := experiments.SetManagerFilter(*manager); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	experiments.SetAdaptive(*adaptive)

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}

	ran := 0
	for _, spec := range experiments.All() {
		if *only != "" && spec.ID != *only {
			continue
		}
		ran++
		tbl, err := spec.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches %q\n", *only)
		os.Exit(2)
	}
}
