// Command paxrun interprets a PAX-language control program (the language
// construct the paper proposes: DEFINE PHASE / DISPATCH / ENABLE with
// mapping options, branch lookahead and successor interlock verification)
// and runs the resulting phase program on the discrete-event simulator.
//
// Usage:
//
//	paxrun [-procs N] [-overlap] [-grain G] [-trace] program.pax
//
// The dispatch log (-trace) shows which mapping was applied between each
// pair of dispatched phases and whether the executive could verify it.
package main

import (
	"flag"
	"fmt"
	"os"

	rundown "repro"
	"repro/internal/metrics"
)

func main() {
	var (
		procs   = flag.Int("procs", 16, "processor count")
		grain   = flag.Int("grain", 0, "granules per task (0 = default)")
		overlap = flag.Bool("overlap", true, "enable phase overlap")
		trace   = flag.Bool("trace", false, "print the dispatch log")
		seed    = flag.Uint64("seed", 7, "seed for generated information selection maps")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paxrun [flags] program.pax")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrun: %v\n", err)
		os.Exit(1)
	}
	file, err := rundown.ParsePax(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrun: %v\n", err)
		os.Exit(1)
	}
	res, err := rundown.InterpretPax(file, &rundown.PaxRegistry{Seed: *seed}, rundown.PaxOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrun: %v\n", err)
		os.Exit(1)
	}

	if *trace {
		fmt.Println("dispatch log:")
		for i, d := range res.Dispatches {
			verified := "unverified"
			if d.Verified {
				verified = "verified"
			}
			fmt.Printf("  %2d %-20s mapping-to-next=%v (%s)\n", i, d.Instance, d.Mapping, verified)
		}
	}

	simRes, err := rundown.Simulate(res.Program, rundown.Options{
		Grain:   *grain,
		Overlap: *overlap,
		Elevate: true,
		Costs:   rundown.DefaultCosts(),
	}, rundown.SimConfig{Procs: *procs, Mgmt: rundown.StealsWorker})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrun: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("phases=%d granules=%d procs=%d overlap=%v\n",
		len(res.Program.Phases), res.Program.TotalGranules(), *procs, *overlap)
	fmt.Printf("makespan %d  utilization %s  compute:management %.1f\n",
		simRes.Makespan, metrics.FormatPercent(simRes.Utilization), simRes.MgmtRatio)
}
