// Command rundownd is rundown-as-a-service: a long-lived HTTP daemon
// owning one hot multi-tenant worker pool. Jobs arrive as declarative
// JSON specs over POST /v1/jobs and share the pool under the
// overlap-first dispatch policy; everything about them is observable
// over HTTP while they run.
//
// Endpoints:
//
//	POST /v1/jobs              submit a job spec; 202 + job ID
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status (+ final report once done)
//	POST /v1/jobs/{id}/abort   abort a running job
//	GET  /v1/jobs/{id}/events  SSE: job snapshots, one terminal "final"
//	GET  /v1/jobs/{id}/trace   the job's flight-recorder trace (binary;
//	                           rundownsim -replay consumes it)
//	GET  /v1/events            SSE: whole-pool snapshots
//	GET  /v1/status            live pool sample
//	GET  /metrics              Prometheus text format
//	GET  /healthz              liveness (+ draining flag)
//	GET  /debug/pprof/         Go profiling
//
// Latency classes: a job submitted with "class": "latency" and
// "tolerance_pct": X is admitted only when the measured backfill
// interference projects a slowdown under X%; otherwise the submit is
// refused with HTTP 429 and a structured reason.
//
// SIGTERM (or Ctrl-C) drains gracefully: running jobs finish, SSE
// streams receive their terminal events, then the process exits 0.
// -drain-timeout bounds the wait; past it, remaining jobs are aborted.
//
// Example:
//
//	rundownd -listen 127.0.0.1:8080 -workers 8 -manager sharded -max-active 2 -queue
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/service"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		workers      = flag.Int("workers", 0, "pool worker count (0 = GOMAXPROCS)")
		maxActive    = flag.Int("max-active", 0, "admission high-water mark: at most this many jobs active (0 = unbounded)")
		queue        = flag.Bool("queue", false, "park over-limit submits instead of refusing them")
		preempt      = flag.Int("preempt-bound", 0, "cap backfill task grain at this many granules (0 = uncapped)")
		stall        = flag.Duration("stall-timeout", 0, "wedged-job watchdog threshold (0 = 5s default, negative disables)")
		sample       = flag.Duration("sample-period", 0, "SSE snapshot cadence (0 = 250ms default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM; past it remaining jobs are aborted")
	)
	mgr := cliflags.Register(flag.CommandLine, "serial", "management layer: "+cliflags.ManagerNames())
	flag.Parse()

	manager, err := mgr.Kind()
	if err != nil {
		fail("%v", err)
	}
	s, err := service.New(service.Config{
		Workers:      *workers,
		Manager:      manager,
		MaxActive:    *maxActive,
		Queue:        *queue,
		PreemptBound: *preempt,
		StallTimeout: *stall,
		SamplePeriod: *sample,
	})
	if err != nil {
		fail("%v", err)
	}

	srv := &http.Server{Addr: *listen, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("rundownd: listening on %s (workers=%d manager=%v)", *listen, *workers, manager)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("rundownd: signal received, draining (bound %v)", *drainTimeout)
	case err := <-errCh:
		fail("%v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the pool. In-flight
	// SSE streams are cut by srv.Shutdown's context once the drain ends.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(drainCtx) }()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("rundownd: drain finished with job errors: %v", err)
	}
	if err := <-shutdownErr; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rundownd: http shutdown: %v", err)
	}
	log.Printf("rundownd: drained, exiting")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rundownd: "+format+"\n", args...)
	os.Exit(1)
}
