// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark with the metric pairs parsed
// out (ns/op, B/op, allocs/op, and any ReportMetric extras). CI pipes the
// executive benchmark smoke (deque microbenchmarks plus the
// serial/sharded/adaptive/async manager series) through it to emit
// BENCH_pr4.json, so the perf trajectory has machine-readable data points
// per run.
//
// -require takes a comma-separated list of substrings; benchjson exits
// nonzero if any of them matches no benchmark name, so a renamed or
// deleted series breaks CI instead of silently vanishing from the data.
//
// Usage:
//
//	go test -run '^$' -bench 'Deque|Manager' -benchtime 1x -benchmem ./... |
//	  benchjson -require ManagerChainFineAsync,ManagerCasperAsync > BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark result. The fixed fields cover the metrics the
// perf gates care about; Extra carries everything else (ReportMetric).
type entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  *float64           `json:"b_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	require := flag.String("require", "", "comma-separated name substrings that must each match at least one benchmark")
	flag.Parse()

	out := []entry{} // non-nil: zero benchmarks must encode as [], not null
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[fields[i+1]] = v
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *require != "" {
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			found := false
			for _, e := range out {
				if strings.Contains(e.Name, want) {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "benchjson: required benchmark %q missing from input\n", want)
				os.Exit(1)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
