package rundown_test

// Public-surface tests for the fault-injection and tenancy layer: the
// error-wrapping audit (every abort path wraps ctx.Err() AND names the
// failing job), deadlines and retries through the Runner options, and the
// capability bits that advertise them.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestRunnerAbortNamesJob is the error-wrapping audit: cancel a running
// job on every manager and on the pool, and require the returned error to
// both wrap context.Canceled (errors.Is) and name the failing job, so a
// caller of a multi-job run can tell which tenant died without parsing
// backend internals.
func TestRunnerAbortNamesJob(t *testing.T) {
	cases := []struct {
		name string
		opts []rundown.Option
	}{
		{"goroutines-serial", []rundown.Option{rundown.WithWorkers(4)}},
		{"goroutines-sharded", []rundown.Option{rundown.WithWorkers(4), rundown.WithManager(rundown.ShardedManager)}},
		{"goroutines-async", []rundown.Option{rundown.WithWorkers(4), rundown.WithManager(rundown.AsyncManager)}},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			r, err := rundown.New(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			job := buildSleepJob(t, 3, 256, time.Millisecond)
			job.Name = "victim"
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := r.Run(ctx, job)
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want wrapped context.Canceled", err)
				}
				if !strings.Contains(err.Error(), `"victim"`) {
					t.Fatalf("error does not name the failing job: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled run did not return promptly")
			}
			waitGoroutineBaseline(t, before)
		})
	}
}

// TestRunnerDeadlineNamesJob drives a per-job deadline through each real
// backend's own enforcement point — the run context on the plain
// executive, the pool's deadline timer on the tenant pool — and requires
// the same contract from both: errors.Is(err, context.DeadlineExceeded)
// and the job's name in the message.
func TestRunnerDeadlineNamesJob(t *testing.T) {
	cases := []struct {
		name string
		opts []rundown.Option
	}{
		{"goroutines", []rundown.Option{rundown.WithWorkers(4), rundown.WithDeadline(15 * time.Millisecond)}},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool(), rundown.WithDeadline(15 * time.Millisecond)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			r, err := rundown.New(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			job := buildSleepJob(t, 2, 256, time.Millisecond)
			job.Name = "doomed"
			_, err = r.Run(context.Background(), job)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
			}
			if !strings.Contains(err.Error(), `"doomed"`) {
				t.Fatalf("error does not name the failing job: %v", err)
			}
			waitGoroutineBaseline(t, before)
		})
	}
}

// TestRunnerVirtualFaultRetry drives WithFaults plus Job.Retry through
// the virtual backend's public surface: a one-shot injected grain error
// costs job 0 one attempt, the retry recovers it, and the unified Report
// carries the fault and retry accounting.
func TestRunnerVirtualFaultRetry(t *testing.T) {
	r, err := rundown.New(
		rundown.WithVirtualTime(rundown.SimConfig{Procs: 4}),
		rundown.WithFaults(rundown.FaultSpec{Seed: 1, Rules: []rundown.FaultRule{
			{Kind: rundown.FaultGrainError, Job: 0, Phase: -1, Worker: -1, Count: 1},
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	j0, _ := buildRunnerJob(t, 1024)
	j0.Name = "wobbly"
	j0.Retry = 2
	j0.Backoff = 64
	j1, _ := buildRunnerJob(t, 1024)
	j1.Name = "steady"
	rep, err := r.RunAll(context.Background(), []rundown.Job{j0, j1})
	if err != nil {
		t.Fatalf("retry should have recovered the injected error: %v", err)
	}
	if rep.Faults == 0 {
		t.Error("Report.Faults = 0, want the injected firing counted")
	}
	if rep.Retries == 0 {
		t.Error("Report.Retries = 0, want the restart counted")
	}
	if got := rep.Jobs[0].Attempts; got != 2 {
		t.Errorf("job 0 attempts = %d, want 2", got)
	}
	if rep.Jobs[1].Err != nil || rep.Jobs[1].Attempts != 1 {
		t.Errorf("co-tenant was disturbed: err=%v attempts=%d",
			rep.Jobs[1].Err, rep.Jobs[1].Attempts)
	}
}

// TestRunnerVirtualDeadlineNamesJob pins the virtual half of the deadline
// contract through RunAll: the deadlined job alone fails, the run error
// wraps context.DeadlineExceeded and names it, and the co-tenant's result
// is untouched.
func TestRunnerVirtualDeadlineNamesJob(t *testing.T) {
	r, err := rundown.New(rundown.WithVirtualTime(rundown.SimConfig{Procs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	j0, _ := buildRunnerJob(t, 1024)
	j0.Name = "doomed"
	j0.Deadline = time.Nanosecond // one virtual unit: certain to fire
	j1, _ := buildRunnerJob(t, 1024)
	j1.Name = "steady"
	rep, err := r.RunAll(context.Background(), []rundown.Job{j0, j1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), `"doomed"`) {
		t.Fatalf("error does not name the failing job: %v", err)
	}
	if rep == nil {
		t.Fatal("failed RunAll should still report per-job outcomes")
	}
	if !errors.Is(rep.Jobs[0].Err, context.DeadlineExceeded) {
		t.Errorf("job 0 err = %v, want wrapped context.DeadlineExceeded", rep.Jobs[0].Err)
	}
	if rep.Jobs[1].Err != nil {
		t.Errorf("co-tenant failed too: %v", rep.Jobs[1].Err)
	}
}

// TestRunnerPoolSentinels exercises the re-exported tenancy sentinels
// through the public pool lifecycle: Submit after Close wraps
// ErrPoolClosed, and a second Close returns the first Close's outcome.
func TestRunnerPoolSentinels(t *testing.T) {
	pool, err := rundown.NewPool(rundown.PoolConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	job := buildSleepJob(t, 1, 8, 0)
	if _, err := pool.Submit(job.Prog, job.Opt, rundown.PoolJobConfig{Name: "early"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = pool.Submit(job.Prog, job.Opt, rundown.PoolJobConfig{Name: "tardy"})
	if !errors.Is(err, rundown.ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want wrapped ErrPoolClosed", err)
	}
	if !strings.Contains(err.Error(), `"tardy"`) {
		t.Fatalf("sentinel wrap does not name the job: %v", err)
	}
	if _, err := pool.Close(); err != nil {
		t.Fatalf("second Close = %v, want the first outcome (nil)", err)
	}
}

// TestCapabilitiesRobustnessBits pins the new capability bits against the
// predicates the backends enforce.
func TestCapabilitiesRobustnessBits(t *testing.T) {
	for _, mk := range []rundown.ExecManager{rundown.SerialManager, rundown.ShardedManager, rundown.AsyncManager} {
		caps := rundown.Capabilities(mk, rundown.StealsWorker)
		if !caps.FaultInjection || !caps.Deadlines {
			t.Errorf("%v: FaultInjection/Deadlines should hold everywhere: %+v", mk, caps)
		}
		if caps.Retries != (caps.RealMulti || caps.VirtualMulti) {
			t.Errorf("%v: Retries bit disagrees with the multi-job predicates: %+v", mk, caps)
		}
		if caps.Admission != caps.RealMulti {
			t.Errorf("%v: Admission bit disagrees with RealMulti: %+v", mk, caps)
		}
	}
}
