package rundown

// The pinned JSON wire schema for reports — the form the service daemon
// (internal/service, cmd/rundownd) serves and its clients parse. Two
// rules keep the schema stable under struct refactors:
//
//   - enums (BackendKind, ExecManager, MgmtModel, FaultKind) marshal as
//     their stable string names, never as numeric values;
//   - JobReport.Err flattens to an "error" string key, so a report
//     round-trips through JSON with the failure text intact (the typed
//     error chain is a process-local concept and does not travel).
//
// Durations marshal as integer nanoseconds under _ns-suffixed keys (Go's
// time.Duration default), pinned by the schema round-trip tests.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// MarshalJSON encodes the backend as its string name ("goroutines",
// "pool", "virtual").
func (b BackendKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

// UnmarshalJSON decodes a backend from its string name (or, leniently,
// the numeric enum value).
func (b *BackendKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		bk, err := ParseBackendKind(s)
		if err != nil {
			return err
		}
		*b = bk
		return nil
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*b = BackendKind(n)
	return nil
}

// ParseBackendKind resolves a backend's string name (the
// BackendKind.String form).
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "goroutines":
		return ExecBackend, nil
	case "pool":
		return PoolBackend, nil
	case "virtual":
		return VirtualBackend, nil
	}
	return 0, fmt.Errorf("rundown: unknown backend %q (valid backends: goroutines|pool|virtual)", s)
}

// jobReportWire is JobReport's pinned JSON shape: identical fields with
// Err flattened to an error string.
type jobReportWire struct {
	Name           string        `json:"name"`
	Error          string        `json:"error,omitempty"`
	Exec           *ExecReport   `json:"exec,omitempty"`
	Sim            *SimJobResult `json:"sim,omitempty"`
	Backfill       int64         `json:"backfill"`
	Attempts       int           `json:"attempts"`
	QueueWait      time.Duration `json:"queue_wait_ns"`
	DeadlineMargin time.Duration `json:"deadline_margin_ns"`
	HasDeadline    bool          `json:"has_deadline"`
}

// MarshalJSON encodes the report with Err flattened to its message.
func (j JobReport) MarshalJSON() ([]byte, error) {
	w := jobReportWire{
		Name:           j.Name,
		Exec:           j.Exec,
		Sim:            j.Sim,
		Backfill:       j.Backfill,
		Attempts:       j.Attempts,
		QueueWait:      j.QueueWait,
		DeadlineMargin: j.DeadlineMargin,
		HasDeadline:    j.HasDeadline,
	}
	if j.Err != nil {
		w.Error = j.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form; a non-empty "error" key becomes
// an opaque error value carrying the original message (sentinel
// identity does not survive the wire).
func (j *JobReport) UnmarshalJSON(data []byte) error {
	var w jobReportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*j = JobReport{
		Name:           w.Name,
		Exec:           w.Exec,
		Sim:            w.Sim,
		Backfill:       w.Backfill,
		Attempts:       w.Attempts,
		QueueWait:      w.QueueWait,
		DeadlineMargin: w.DeadlineMargin,
		HasDeadline:    w.HasDeadline,
	}
	if w.Error != "" {
		j.Err = errors.New(w.Error)
	}
	return nil
}
