package rundown

import (
	"fmt"
	"time"
)

// BackendKind identifies which machine a Runner drives.
type BackendKind uint8

const (
	// ExecBackend runs jobs on real goroutine workers through the
	// executive (internal/executive). Run uses one dedicated worker set
	// per job; RunAll shares one worker set between the jobs through the
	// tenant pool, exactly as PoolBackend does.
	ExecBackend BackendKind = iota
	// PoolBackend runs jobs on the multi-tenant worker pool
	// (internal/tenant): one shared worker set, overlap-first cross-job
	// dispatch, one job's rundown filled by another job's work. Run
	// submits a single job to a fresh pool.
	PoolBackend
	// VirtualBackend runs jobs on the deterministic discrete-event
	// machine model (internal/sim): virtual time, priced management,
	// identical results on every host.
	VirtualBackend
)

func (b BackendKind) String() string {
	switch b {
	case ExecBackend:
		return "goroutines"
	case PoolBackend:
		return "pool"
	case VirtualBackend:
		return "virtual"
	default:
		return fmt.Sprintf("BackendKind(%d)", uint8(b))
	}
}

// Job is the backend-agnostic job spec the Runner executes: the same Job
// runs unchanged on virtual time, on goroutine workers, or inside a
// shared tenant pool — only the Runner's options decide where.
type Job struct {
	// Name labels the job in reports and errors ("jobN" default where a
	// label is needed).
	Name string
	// Prog is the phase program.
	Prog *Program
	// Opt configures the job's scheduler (grain, overlap, split policy,
	// management costs).
	Opt Options
	// Priority orders cross-job backfill when several jobs share a
	// machine (higher first). Ignored by single-job runs.
	Priority int
	// Weight is the job's share of home workers and backfill credit in
	// shared runs (<= 0 selects 1). Ignored by single-job runs.
	Weight int
	// Deadline bounds the job's submit-to-finish time (0 inherits the
	// Runner's WithDeadline default; both 0 = none). A job past its
	// deadline is aborted — only that job — with an error wrapping
	// context.DeadlineExceeded. Virtual runs count one unit per
	// nanosecond; virtual single-program runs ignore deadlines.
	Deadline time.Duration
	// Retry is how many times a failed attempt restarts on a fresh
	// scheduler (0 inherits WithRetry's default). Honored by pool-backed
	// and virtual RunAll runs.
	Retry int
	// Backoff is the base delay before the first retry, doubled per
	// further retry and capped at 64× (0 inherits WithRetry's default).
	Backoff time.Duration
}

// JobReport is one job's outcome within a RunAll. Its JSON form is part
// of the service daemon's pinned wire schema (see json.go): Err
// flattens to an "error" string, durations are integer nanoseconds
// with _ns-suffixed keys, and absent backend detail reports are
// omitted.
type JobReport struct {
	// Name is the job's label.
	Name string
	// Err is the job's failure, if any (other jobs may have succeeded).
	Err error
	// Exec is the job's goroutine-execution report (real backends).
	Exec *ExecReport
	// Sim is the job's virtual-time result (virtual backend).
	Sim *SimJobResult
	// Backfill counts work the job received from workers homed on other
	// jobs: tasks on real backends, virtual compute units on the virtual
	// backend.
	Backfill int64
	// Attempts counts scheduler instantiations: 1 plus the retries the
	// job took (0 on backends without retry support).
	Attempts int
	// QueueWait is how long the job waited behind admission control
	// between submission and its first activation — zero when it was
	// admitted immediately, the job's whole lifetime when it was retired
	// without ever running. Pool-backed runs measure it on the wall
	// clock; virtual jobs all activate at submission and report zero.
	QueueWait time.Duration
	// DeadlineMargin is the deadline budget left when the job finished
	// (negative when it was retired past its deadline); HasDeadline
	// reports whether the job had a deadline at all — the margin is
	// meaningless without one. Virtual RunAll jobs measure it in
	// nanosecond-equivalent virtual units.
	DeadlineMargin time.Duration
	HasDeadline    bool
}

// Report is the unified result of a Runner.Run or Runner.RunAll: one
// headline block that reads the same across backends, plus the
// backend-specific detail reports embedded for callers that need them.
// The json tags pin the service daemon's wire schema: Backend, Manager
// and Model marshal as their string names, durations as integer
// nanoseconds (_ns keys), and the flight-recorder trace is excluded —
// traces travel in their own versioned binary format (the service's
// /trace endpoint), never inline in a report.
type Report struct {
	// Backend identifies the machine that produced the run.
	Backend BackendKind `json:"backend"`
	// Manager is the executive manager that ran the job (real backends).
	Manager ExecManager `json:"manager"`
	// Model is the management resource model (virtual backend).
	Model MgmtModel `json:"model"`
	// Workers is the worker count (real) or processor count P (virtual).
	Workers int `json:"workers"`
	// Tasks is the number of tasks dispatched.
	Tasks int64 `json:"tasks"`
	// Wall is the elapsed wall-clock time (real backends; zero on the
	// virtual backend).
	Wall time.Duration `json:"wall_ns"`
	// Makespan is the virtual completion time (virtual backend; zero on
	// real backends).
	Makespan int64 `json:"makespan,omitempty"`
	// Utilization is compute / (Workers * elapsed), in the backend's own
	// time base.
	Utilization float64 `json:"utilization"`
	// MgmtRatio is the paper's computation-to-management ratio (0 when no
	// management time was recorded).
	MgmtRatio float64 `json:"mgmt_ratio"`
	// Faults counts injected fault firings (WithFaults runs; 0 otherwise).
	Faults int64 `json:"faults,omitempty"`
	// Retries counts job attempt restarts across the run.
	Retries int64 `json:"retries,omitempty"`

	// Sim is the single-program virtual result (VirtualBackend Run).
	Sim *SimResult `json:"sim,omitempty"`
	// SimMulti is the multi-program virtual result (VirtualBackend
	// RunAll).
	SimMulti *MultiSimResult `json:"sim_multi,omitempty"`
	// Exec is the goroutine execution report (ExecBackend Run, and each
	// pool job's report also appears in Jobs).
	Exec *ExecReport `json:"exec,omitempty"`
	// Pool is the pool-lifetime report (pool-backed runs).
	Pool *PoolReport `json:"pool,omitempty"`
	// Jobs holds per-job reports for RunAll, in submission order.
	Jobs []JobReport `json:"jobs,omitempty"`
	// Trace is the run's merged flight-recorder trace (WithTrace runs
	// only; nil otherwise). Virtual traces are deterministic; real-backend
	// traces carry wall-clock timestamps.
	Trace *Trace `json:"-"`
	// Metrics is the run's closing telemetry dump (WithMetrics runs
	// only; nil otherwise): the full rundown metric set — counters,
	// gauges, latency histograms — sorted by name. Virtual dumps are
	// bit-identical across identical runs; real-backend dumps are
	// structurally identical but carry measured times.
	Metrics *MetricsDump `json:"metrics,omitempty"`
}

func (r *Report) String() string {
	if r.Backend == VirtualBackend {
		return fmt.Sprintf("backend=%v model=%v workers=%d tasks=%d makespan=%d util=%.3f ratio=%.1f",
			r.Backend, r.Model, r.Workers, r.Tasks, r.Makespan, r.Utilization, r.MgmtRatio)
	}
	return fmt.Sprintf("backend=%v manager=%v workers=%d tasks=%d wall=%v util=%.3f ratio=%.1f",
		r.Backend, r.Manager, r.Workers, r.Tasks, r.Wall, r.Utilization, r.MgmtRatio)
}

// Snapshot is one live observation of a running job, streamed to the
// Runner's Observer. Real backends sample it on a wall clock
// (WithObservePeriod); the virtual backend emits it at deterministic
// virtual-time marks (WithObserveEvery), so observed simulations remain
// reproducible. All counters are cumulative since the run started. The
// json tags pin the service daemon's SSE event schema.
type Snapshot struct {
	// Backend identifies the emitting machine.
	Backend BackendKind `json:"backend"`
	// Final marks the closing snapshot, emitted once on every outcome:
	// with the finished run's totals on success, with the counters
	// accumulated so far on failure or cancellation.
	Final bool `json:"final"`
	// Elapsed is wall-clock time since the run started (real backends).
	Elapsed time.Duration `json:"elapsed_ns"`
	// VirtualTime is the simulation frontier (virtual backend).
	VirtualTime int64 `json:"virtual_time,omitempty"`
	// Tasks is the number of tasks executed so far.
	Tasks int64 `json:"tasks"`
	// Jobs is the number of still-unfinished jobs (1 for single-job
	// runs until they finish).
	Jobs int `json:"jobs"`
	// BackfillTasks counts cross-job tasks so far (pool runs).
	BackfillTasks int64 `json:"backfill_tasks"`
	// Utilization is compute / (Workers * elapsed) so far.
	Utilization float64 `json:"utilization"`
	// OverheadShare is management / (Workers * elapsed) so far — live
	// work inflation, the quantity the paper's rundown analysis is
	// about.
	OverheadShare float64 `json:"overhead_share"`
	// Batch is the adaptive controller's current refill batch (virtual
	// Adaptive model; zero elsewhere).
	Batch int `json:"batch,omitempty"`
}

// Observer receives Snapshots from a running job. The callback must be
// quick: on real backends it delays only the sampler goroutine, on the
// virtual backend it runs inline in the event loop.
type Observer func(Snapshot)
