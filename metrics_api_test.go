package rundown_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rundown "repro"
)

// This file exercises the public telemetry surface (WithMetrics /
// WithMetricsRegistry / Report.Metrics / the per-job QueueWait and
// DeadlineMargin fields) across all three backends. The recording
// internals are covered by internal/telemetry's tests and the
// internal/sim metrics goldens; here the contract is the Runner's.

func metricValue(t *testing.T, d *rundown.MetricsDump, name string) int64 {
	t.Helper()
	m := d.Get(name)
	if m == nil {
		t.Fatalf("metric %q missing from dump", name)
	}
	return m.Value
}

// TestMetricsOffByDefault pins the opt-in contract: without WithMetrics
// the report carries no dump.
func TestMetricsOffByDefault(t *testing.T) {
	r, err := rundown.New(rundown.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	job, dst := buildRunnerJob(t, 256)
	rep, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	checkRunnerJob(t, dst)
	if rep.Metrics != nil {
		t.Fatalf("metrics off, but Report.Metrics = %+v", rep.Metrics)
	}
}

// TestMetricsThreeBackends runs the same metered Job on every backend
// and checks the dump is present, task-consistent, and carries the
// right time base.
func TestMetricsThreeBackends(t *testing.T) {
	cases := []struct {
		name string
		opts []rundown.Option
		unit string
	}{
		{"virtual", []rundown.Option{rundown.WithWorkers(8),
			rundown.WithVirtualTime(rundown.SimConfig{Procs: 8})}, "virtual"},
		{"exec", []rundown.Option{rundown.WithWorkers(4)}, "ns"},
		{"pool", []rundown.Option{rundown.WithWorkers(4), rundown.WithPool()}, "ns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := rundown.New(append(tc.opts, rundown.WithMetrics())...)
			if err != nil {
				t.Fatal(err)
			}
			job, _ := buildRunnerJob(t, 512)
			rep, err := r.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Metrics == nil {
				t.Fatal("WithMetrics run returned no Report.Metrics")
			}
			if rep.Metrics.TimeUnit != tc.unit {
				t.Errorf("TimeUnit = %q, want %q", rep.Metrics.TimeUnit, tc.unit)
			}
			if got := metricValue(t, rep.Metrics, "rundown_dispatch_total"); got == 0 {
				t.Error("rundown_dispatch_total = 0 after a completed run")
			}
			if got := metricValue(t, rep.Metrics, "rundown_complete_total"); got != rep.Tasks {
				t.Errorf("rundown_complete_total = %d, want Report.Tasks = %d", got, rep.Tasks)
			}
			if got := metricValue(t, rep.Metrics, "rundown_jobs_done_total"); got != 1 {
				t.Errorf("rundown_jobs_done_total = %d, want 1", got)
			}
			if got := metricValue(t, rep.Metrics, "rundown_jobs_active"); got != 0 {
				t.Errorf("rundown_jobs_active = %d after the run, want 0", got)
			}
			if m := rep.Metrics.Get("rundown_compute_time_total"); m.Value <= 0 {
				t.Errorf("rundown_compute_time_total = %d, want > 0", m.Value)
			}
		})
	}
}

// TestMetricsVirtualDeterministic pins the tentpole determinism claim at
// the public surface: two identical virtual runs marshal bit-identical
// dumps (the internal goldens pin the exact contents per model).
func TestMetricsVirtualDeterministic(t *testing.T) {
	dump := func() []byte {
		r, err := rundown.New(rundown.WithMetrics(),
			rundown.WithVirtualTime(rundown.SimConfig{Procs: 8}))
		if err != nil {
			t.Fatal(err)
		}
		job, _ := buildRunnerJob(t, 1024)
		rep, err := r.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical virtual runs dumped different metrics:\n%s\n%s", a, b)
	}
}

// TestMetricsRunAllJobFields checks the satellite JobReport surface on a
// metered pool RunAll: queue waits under single-slot admission and
// deadline margins for deadlined jobs.
func TestMetricsRunAllJobFields(t *testing.T) {
	r, err := rundown.New(
		rundown.WithWorkers(4), rundown.WithMetrics(),
		rundown.WithAdmission(1, true),
		rundown.WithDeadline(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	jobA, _ := buildRunnerJob(t, 512)
	jobB, _ := buildRunnerJob(t, 512)
	jobA.Name, jobB.Name = "a", "b"
	rep, err := r.RunAll(context.Background(), []rundown.Job{jobA, jobB})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("got %d job reports, want 2", len(rep.Jobs))
	}
	for _, jr := range rep.Jobs {
		if !jr.HasDeadline {
			t.Errorf("job %q: HasDeadline = false under WithDeadline", jr.Name)
		}
		if jr.DeadlineMargin <= 0 {
			t.Errorf("job %q: DeadlineMargin = %v, want > 0 for a met deadline", jr.Name, jr.DeadlineMargin)
		}
		if jr.QueueWait < 0 {
			t.Errorf("job %q: QueueWait = %v, want >= 0", jr.Name, jr.QueueWait)
		}
	}
	// Single-slot admission serializes the jobs: the second one queued for
	// at least the length of some first-job execution.
	if rep.Jobs[1].QueueWait == 0 {
		t.Errorf("job %q: QueueWait = 0 behind a single-slot admission gate", rep.Jobs[1].Name)
	}
	if got := metricValue(t, rep.Metrics, "rundown_jobs_total"); got != 2 {
		t.Errorf("rundown_jobs_total = %d, want 2", got)
	}
	if m := rep.Metrics.Get("rundown_queue_wait"); m.Count != 2 {
		t.Errorf("rundown_queue_wait count = %d, want 2", m.Count)
	}
}

// TestMetricsVirtualRunAllDeadlineMargin checks the virtual side of the
// JobReport satellite: margin = deadline − makespan on the
// one-unit-per-nanosecond clock, deterministic.
func TestMetricsVirtualRunAllDeadlineMargin(t *testing.T) {
	r, err := rundown.New(rundown.WithMetrics(),
		rundown.WithVirtualTime(rundown.SimConfig{Procs: 8}))
	if err != nil {
		t.Fatal(err)
	}
	job, _ := buildRunnerJob(t, 512)
	job.Deadline = time.Duration(1 << 40)
	rep, err := r.RunAll(context.Background(), []rundown.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[0]
	if !jr.HasDeadline {
		t.Fatal("HasDeadline = false for a deadlined virtual job")
	}
	want := time.Duration(int64(job.Deadline) - jr.Sim.Makespan)
	if jr.DeadlineMargin != want {
		t.Errorf("DeadlineMargin = %v, want deadline-makespan = %v", jr.DeadlineMargin, want)
	}
	if jr.QueueWait != 0 {
		t.Errorf("QueueWait = %v on the virtual backend, want 0", jr.QueueWait)
	}
}

// TestMetricsRegistryHandler drives the WithMetricsRegistry flow a
// service uses: a caller-owned registry scraped over HTTP serves every
// rundown series after (and during) runs that record into it.
func TestMetricsRegistryHandler(t *testing.T) {
	reg := rundown.NewMetricsRegistry(4, "ns")
	r, err := rundown.New(rundown.WithWorkers(4), rundown.WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	job, _ := buildRunnerJob(t, 256)
	rep, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		"rundown_dispatch_total", "rundown_compute_time_total",
		"rundown_dispatch_wait_bucket", "rundown_jobs_active",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("Prometheus exposition missing %q", series)
		}
	}
	// The report dump and the live registry read the same counters.
	if got := metricValue(t, rep.Metrics, "rundown_complete_total"); got != rep.Tasks {
		t.Errorf("rundown_complete_total = %d, want %d", got, rep.Tasks)
	}
	// FormatMetrics renders every metric the dump carries.
	if out := rundown.FormatMetrics(rep.Metrics); !strings.Contains(out, "rundown_dispatch_wait") {
		t.Errorf("FormatMetrics output missing histogram line:\n%s", out)
	}
}
