package rundown

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/executive"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Option configures a Runner. Options are applied in order by New; an
// option that conflicts with one already applied makes New fail.
type Option func(*runnerConfig) error

// runnerConfig is the resolved Runner configuration. Zero value plus
// defaults = goroutine executive, serial manager, GOMAXPROCS workers.
type runnerConfig struct {
	workers    int
	workersSet bool

	manager    ExecManager
	managerSet bool

	adaptive   bool
	mgmtTarget float64
	dedicated  bool

	dequeCap, batch    int
	readyCap, lowWater int

	pool    bool
	virtual bool
	simCfg  SimConfig // valid when virtual

	observer      Observer
	observePeriod time.Duration
	observeEvery  int64

	traceOn bool
	traceW  io.Writer // nil = capture in Report.Trace only

	metricsOn  bool
	metricsReg *telemetry.Registry // caller-owned; nil = fresh per run

	faults       *fault.Spec
	liveFaults   bool
	deadline     time.Duration // default per-job deadline (Job.Deadline overrides)
	retry        int           // default per-job retry budget (Job.Retry overrides)
	backoff      time.Duration // default retry backoff base (Job.Backoff overrides)
	maxActive    int
	queue        bool
	stallTimeout time.Duration
	preemptBound int
	admit        tenant.AdmitFunc

	// traceRec is a caller-owned long-lived recorder for StartPool (a
	// service daemon's per-job trace downloads); per-run tracing uses
	// newRecorder instead.
	traceRec *trace.Recorder

	// Native-observer passthroughs for the legacy wrappers (Execute,
	// NewPool), which accept backend-native snapshot callbacks in their
	// config structs. They take precedence over the unified observer.
	rawExecObs func(executive.Snapshot)
	rawPoolObs func(tenant.Snapshot)
}

// WithWorkers sets the worker count (real backends) or the processor
// count P (virtual backend, unless WithVirtualTime's SimConfig.Procs is
// set). Unset, real backends use runtime.GOMAXPROCS(0); the virtual
// backend has no default — it requires a processor count through this
// option or SimConfig.Procs, preserving the legacy Simulate wrapper's
// validation. Values < 1 are recorded verbatim and rejected by the
// backend at Run time, preserving the legacy entry points' error
// behaviour.
func WithWorkers(n int) Option {
	return func(c *runnerConfig) error {
		c.workers = n
		c.workersSet = true
		return nil
	}
}

// WithManager selects the executive management layer (SerialManager,
// ShardedManager or AsyncManager; SerialManager default). On the virtual
// backend the manager picks the matching management resource model:
// serial prices as StealsWorker (or Dedicated under WithDedicatedExec),
// sharded as ShardedMgmt (AdaptiveMgmt with WithAdaptiveBatching), async
// as AsyncMgmt.
func WithManager(m ExecManager) Option {
	return func(c *runnerConfig) error {
		c.manager = m
		c.managerSet = true
		return nil
	}
}

// WithAdaptiveBatching enables the adaptive batching controller with the
// given lock-overhead-share setpoint (<= 0 selects the default, 0.02).
// Only the sharded manager honors it on real backends (matching
// ExecConfig.Adaptive); on the virtual backend it selects the Adaptive
// management model unless an async manager was chosen. Virtual
// multi-program runs (RunAll) price it too, as ONE pool-wide controller
// retuning the shared batch knobs from a machine-wide starvation
// integral. Real pool-backed runs (RunAll on real backends, WithPool)
// deliberately do NOT honor it: pool workers park at pool level, where
// the controller's shrink signal reads zero, so pool jobs run
// fixed-parameter managers — adaptive tenancy on hardware is a ROADMAP
// follow-on, now with the virtual pricing in hand.
func WithAdaptiveBatching(target float64) Option {
	return func(c *runnerConfig) error {
		c.adaptive = true
		c.mgmtTarget = target
		return nil
	}
}

// WithDedicatedExec gives the serial executive its own processor in the
// virtual backend (the paper's Dedicated model) instead of stealing a
// worker. Real backends ignore it: the async manager is the dedicated
// executive processor realized on hardware.
func WithDedicatedExec() Option {
	return func(c *runnerConfig) error {
		c.dedicated = true
		return nil
	}
}

// WithDequeCap bounds each worker's local task deque (sharded manager).
func WithDequeCap(n int) Option {
	return func(c *runnerConfig) error { c.dequeCap = n; return nil }
}

// WithBatch sets the completion batch size (sharded manager) or the
// management goroutine's drain chunk (async manager); on the virtual
// backend it is the Adaptive model's refill batch.
func WithBatch(n int) Option {
	return func(c *runnerConfig) error { c.batch = n; return nil }
}

// WithReadyCap bounds the async manager's ready-buffer.
func WithReadyCap(n int) Option {
	return func(c *runnerConfig) error { c.readyCap = n; return nil }
}

// WithLowWater sets the async manager's deferred-overlap low-water mark.
func WithLowWater(n int) Option {
	return func(c *runnerConfig) error { c.lowWater = n; return nil }
}

// WithVirtualTime switches the Runner to the deterministic discrete-event
// backend, parameterized by cfg. cfg.Procs <= 0 inherits WithWorkers.
// cfg.Mgmt is honored as given unless a manager-shaped option
// (WithManager, WithAdaptiveBatching, WithDedicatedExec) was also
// applied — those take precedence, so one option set retargets cleanly
// between real and virtual machines. The same rule covers every other
// overlapping field: an explicit option (WithBatch, WithReadyCap,
// WithLowWater, WithObserver, WithObserveEvery) overrides the
// corresponding cfg value when set.
func WithVirtualTime(cfg SimConfig) Option {
	return func(c *runnerConfig) error {
		if c.pool {
			return fmt.Errorf("rundown: WithVirtualTime conflicts with WithPool (virtual tenancy runs through RunAll)")
		}
		c.virtual = true
		c.simCfg = cfg
		return nil
	}
}

// WithPool makes Run submit its single job to a multi-tenant worker pool
// instead of a dedicated executive, so the job runs under pool dispatch
// exactly as RunAll jobs do. RunAll uses the pool on real backends either
// way.
func WithPool() Option {
	return func(c *runnerConfig) error {
		if c.virtual {
			return fmt.Errorf("rundown: WithPool conflicts with WithVirtualTime (virtual tenancy runs through RunAll)")
		}
		c.pool = true
		return nil
	}
}

// WithObserver streams live progress Snapshots from every run to fn.
func WithObserver(fn Observer) Option {
	return func(c *runnerConfig) error { c.observer = fn; return nil }
}

// WithObservePeriod sets the wall-clock sampling period for real
// backends (<= 0 selects 10ms).
func WithObservePeriod(d time.Duration) Option {
	return func(c *runnerConfig) error { c.observePeriod = d; return nil }
}

// WithObserveEvery sets the virtual-time snapshot stride for the virtual
// backend (<= 0 selects roughly 16 snapshots per run).
func WithObserveEvery(units int64) Option {
	return func(c *runnerConfig) error { c.observeEvery = units; return nil }
}

// WithTrace turns on the flight recorder: every run captures a
// structured trace of its scheduling decisions — dispatches,
// completions, steals, parks, retunes, aborts — and attaches the merged
// trace to Report.Trace. When w is non-nil the trace is also written to
// it in the versioned binary format (readable back with ReadTraceFile)
// after the run completes; pass nil to capture in memory only. Virtual
// traces are deterministic (identical runs produce identical traces);
// real-backend traces carry wall-clock nanosecond timestamps.
func WithTrace(w io.Writer) Option {
	return func(c *runnerConfig) error {
		c.traceOn = true
		c.traceW = w
		return nil
	}
}

// WithMetrics turns on unified telemetry: every run records the
// standard rundown metric set — dispatch/completion/steal counters,
// compute/management/idle time splits, dispatch-wait and queue-wait
// latency histograms, job lifecycle gauges — at the same scheduling
// chokepoints the flight recorder instruments, on every backend, and
// attaches the deterministic sorted dump to Report.Metrics. Virtual
// runs record in virtual units from the event loop, so identical runs
// produce bit-identical dumps; real backends record wall-clock
// nanoseconds. Recording is amortized zero-alloc (per-worker sharded
// counters), so metrics-on runs price within noise of metrics-off.
func WithMetrics() Option {
	return func(c *runnerConfig) error {
		c.metricsOn = true
		return nil
	}
}

// WithMetricsRegistry is WithMetrics recording into a caller-owned
// registry instead of a fresh per-run one — the form a long-lived
// service uses to mount reg.Handler() (Prometheus text) or
// reg.Publish (expvar) once and watch successive runs stream through
// the same live endpoint. Counters accumulate across runs on a shared
// registry; Report.Metrics still carries each run's closing dump.
func WithMetricsRegistry(reg *MetricsRegistry) Option {
	return func(c *runnerConfig) error {
		if reg == nil {
			return fmt.Errorf("rundown: WithMetricsRegistry needs a non-nil registry")
		}
		c.metricsOn = true
		c.metricsReg = reg
		return nil
	}
}

// WithFaults arms deterministic fault injection: the campaign's rules
// strike at the same logical chokepoints on every backend — priced in
// virtual time, bounded wall-clock effects on real goroutines — so
// recovery behaviour (retries, deadlines, stall detection) can be
// exercised on demand. Identical specs produce bit-identical virtual
// outcomes; see FaultSpec and FaultScenario.
func WithFaults(spec FaultSpec) Option {
	return func(c *runnerConfig) error {
		c.faults = &spec
		return nil
	}
}

// WithDeadline sets a default per-job deadline: a job not finished this
// long after submission is aborted — only that job — with an error
// wrapping context.DeadlineExceeded. Job.Deadline overrides it per job.
// Honored by pool-backed runs and virtual RunAll (one virtual unit per
// nanosecond); single-job goroutine runs enforce it through the run
// context. Virtual single-program runs ignore deadlines.
func WithDeadline(d time.Duration) Option {
	return func(c *runnerConfig) error {
		if d < 0 {
			return fmt.Errorf("rundown: WithDeadline needs a non-negative duration")
		}
		c.deadline = d
		return nil
	}
}

// WithRetry sets a default per-job retry policy: a job whose attempt
// fails (work error, panic, injected fault, wedge) restarts on a fresh
// scheduler up to n times, waiting backoff before the first retry and
// doubling it per further retry (capped at 64×). Deadline aborts and
// run cancellation never retry. Job.Retry / Job.Backoff override it per
// job. Honored by pool-backed runs and virtual RunAll.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *runnerConfig) error {
		if n < 0 {
			return fmt.Errorf("rundown: WithRetry needs a non-negative count")
		}
		c.retry = n
		c.backoff = backoff
		return nil
	}
}

// WithAdmission arms pool admission control: at most maxActive jobs run
// concurrently. A Submit (or RunAll job) above the mark fails with an
// error wrapping ErrPoolSaturated — or, with queue set, waits its turn
// in submit order. Deadlines keep running while a job queues.
func WithAdmission(maxActive int, queue bool) Option {
	return func(c *runnerConfig) error {
		if maxActive < 1 {
			return fmt.Errorf("rundown: WithAdmission needs maxActive >= 1")
		}
		c.maxActive = maxActive
		c.queue = queue
		return nil
	}
}

// WithPreemptBound caps every job's task grain at n granules — the
// largest non-preemptible unit a worker can hold, bounding how long a
// co-tenant emerging from rundown waits behind an in-flight foreign
// grain. PoolReport.MaxBackfillTask (and the virtual MultiResult's
// MaxBackfillTask) measure the enforcement.
func WithPreemptBound(n int) Option {
	return func(c *runnerConfig) error {
		if n < 1 {
			return fmt.Errorf("rundown: WithPreemptBound needs n >= 1")
		}
		c.preemptBound = n
		return nil
	}
}

// WithStallTimeout arms the pool watchdog: a job with tasks in flight
// and no progress for d is failed as wedged (and retried if it has
// retries left). Negative d disables the watchdog even under WithFaults
// (which otherwise arms a default). Only pool-backed runs consult it.
func WithStallTimeout(d time.Duration) Option {
	return func(c *runnerConfig) error {
		c.stallTimeout = d
		return nil
	}
}

// WithAdmitFunc installs a caller-defined admission predicate on
// pool-backed runs: Submit consults fn under the pool lock — before the
// WithAdmission high-water check — with the job's config and a
// consistent load view, and a non-nil return rejects the job with an
// error wrapping fn's error. The service daemon's latency classes are
// built on this hook; see AdmitFunc.
func WithAdmitFunc(fn AdmitFunc) Option {
	return func(c *runnerConfig) error {
		if fn == nil {
			return fmt.Errorf("rundown: WithAdmitFunc needs a non-nil predicate")
		}
		c.admit = fn
		return nil
	}
}

// WithLiveFaults pre-arms an extensible fault plan (and the pool stall
// watchdog) on pool-backed runs, so fault rules can be injected into
// the live pool with Pool.InjectFaults — the staging path a service
// daemon uses to scope a campaign to one submitted job. WithFaults
// already arms an extensible plan; this option exists for pools that
// start quiet.
func WithLiveFaults() Option {
	return func(c *runnerConfig) error {
		c.liveFaults = true
		return nil
	}
}

// WithTraceRecorder attaches a caller-owned flight recorder to
// StartPool pools: the pool records its scheduling decisions into rec
// for its whole lifetime, and the caller can Take() merged snapshots
// while the pool runs (race-safe; a live Take may miss the newest
// events). This is the service daemon's per-job trace-download path —
// unlike WithTrace, whose recorder is per-run and harvested into
// Report.Trace automatically. Run/RunAll ignore it.
func WithTraceRecorder(rec *TraceRecorder) Option {
	return func(c *runnerConfig) error {
		if rec == nil {
			return fmt.Errorf("rundown: WithTraceRecorder needs a non-nil recorder")
		}
		c.traceRec = rec
		return nil
	}
}

// newRecorder builds a fresh flight recorder for one run (nil when
// tracing is off). A recorder is per-run, never per-Runner: two Runs of
// the same Runner must not interleave their events.
func (c *runnerConfig) newRecorder() *trace.Recorder {
	if !c.traceOn {
		return nil
	}
	return trace.NewRecorder(trace.Meta{}, c.workers)
}

// finishTrace merges a finished run's trace into rep and writes the
// binary form when a writer was configured. It returns the write error,
// if any; the run itself already succeeded.
func (c *runnerConfig) finishTrace(rec *trace.Recorder, rep *Report) error {
	if rec == nil || rep == nil {
		return nil
	}
	t := rec.Take()
	rep.Trace = t
	if c.traceW != nil {
		if err := trace.Write(c.traceW, t); err != nil {
			return fmt.Errorf("rundown: writing trace: %w", err)
		}
	}
	return nil
}

// newMetrics builds one run's metric set (nil when metrics are off). A
// metric set is per-run like a recorder unless the caller supplied a
// registry; unit labels a fresh registry's time base ("ns" on real
// backends, "virtual" on the simulator — a caller-owned registry keeps
// the unit it was built with).
func (c *runnerConfig) newMetrics(unit string) *telemetry.Set {
	if !c.metricsOn {
		return nil
	}
	reg := c.metricsReg
	if reg == nil {
		reg = telemetry.NewRegistry(c.workers, unit)
	}
	return telemetry.NewSet(reg)
}

// finishMetrics attaches a finished run's metric dump to rep.
func (c *runnerConfig) finishMetrics(met *telemetry.Set, rep *Report) {
	if met == nil || rep == nil {
		return
	}
	rep.Metrics = met.Registry.Dump()
}

// withExecObserver passes a native executive observer through unadapted;
// the legacy Execute wrapper uses it to honor ExecConfig.Observer.
func withExecObserver(fn func(ExecSnapshot), period time.Duration) Option {
	return func(c *runnerConfig) error {
		c.rawExecObs = fn
		if period > 0 {
			c.observePeriod = period
		}
		return nil
	}
}

// withPoolObserver passes a native pool observer through unadapted; the
// legacy NewPool wrapper uses it to honor PoolConfig.Observer.
func withPoolObserver(fn func(PoolSnapshot), period time.Duration) Option {
	return func(c *runnerConfig) error {
		c.rawPoolObs = fn
		if period > 0 {
			c.observePeriod = period
		}
		return nil
	}
}

// resolve applies defaults after every option has run.
func (c *runnerConfig) resolve() {
	if !c.workersSet {
		c.workers = runtime.GOMAXPROCS(0)
	}
}

// model resolves the virtual backend's management resource model. An
// explicit WithVirtualTime model is honored unless a manager-shaped
// option was applied; then the manager decides, mirroring how the same
// configuration runs on hardware.
func (c *runnerConfig) model() MgmtModel {
	if c.virtual && !c.managerSet && !c.adaptive && !c.dedicated {
		return c.simCfg.Mgmt
	}
	switch {
	case c.manager == AsyncManager:
		return AsyncMgmt
	case c.adaptive:
		return AdaptiveMgmt
	case c.manager == ShardedManager:
		return ShardedMgmt
	case c.dedicated:
		return Dedicated
	default:
		return StealsWorker
	}
}

// jobOpt returns job's scheduler options with the Runner-level adaptive
// setting folded in (the executive and the sim both read adaptivity from
// the job options).
func (c *runnerConfig) jobOpt(job Job) Options {
	opt := job.Opt
	if c.adaptive {
		opt.AdaptiveBatch = true
		if opt.MgmtTarget <= 0 {
			opt.MgmtTarget = c.mgmtTarget
		}
	}
	return opt
}

// execConfig builds the executive configuration for single-job goroutine
// runs.
func (c *runnerConfig) execConfig() executive.Config {
	cfg := executive.Config{
		Workers:  c.workers,
		Manager:  c.manager,
		DequeCap: c.dequeCap,
		Batch:    c.batch,
		ReadyCap: c.readyCap,
		LowWater: c.lowWater,
		Adaptive: c.adaptive,
		Faults:   c.faults,
	}
	if c.adaptive {
		cfg.MgmtTarget = c.mgmtTarget
	}
	if c.rawExecObs != nil {
		cfg.Observer = c.rawExecObs
		cfg.ObservePeriod = c.observePeriod
	} else if c.observer != nil {
		fn := c.observer
		cfg.Observer = func(s executive.Snapshot) {
			// Jobs reads drained only when the program truly completed —
			// a cancelled run's Final snapshot keeps Jobs=1, matching the
			// virtual backend's unfinished-jobs accounting. A bare
			// pre-start-failure Final (Elapsed zero: the run never
			// started) reads 0, as the other backends' failEarly
			// snapshots do.
			jobs := 1
			if s.Done || (s.Final && s.Elapsed == 0) {
				jobs = 0
			}
			fn(Snapshot{
				Backend: ExecBackend, Final: s.Final,
				Elapsed: s.Elapsed, Tasks: s.Tasks, Jobs: jobs,
				Utilization: s.Utilization, OverheadShare: s.OverheadShare,
			})
		}
		cfg.ObservePeriod = c.observePeriod
	}
	return cfg
}

// poolConfig builds the tenant pool configuration for shared runs.
func (c *runnerConfig) poolConfig() tenant.Config {
	cfg := tenant.Config{
		Workers:       c.workers,
		Manager:       c.manager,
		DequeCap:      c.dequeCap,
		Batch:         c.batch,
		ReadyCap:      c.readyCap,
		LowWater:      c.lowWater,
		Faults:        c.faults,
		DynamicFaults: c.liveFaults,
		MaxActive:     c.maxActive,
		Queue:         c.queue,
		StallTimeout:  c.stallTimeout,
		PreemptBound:  c.preemptBound,
		Admit:         c.admit,
	}
	if c.rawPoolObs != nil {
		cfg.Observer = c.rawPoolObs
		cfg.ObservePeriod = c.observePeriod
	} else if c.observer != nil {
		fn := c.observer
		cfg.Observer = func(s tenant.Snapshot) {
			fn(Snapshot{
				Backend: PoolBackend, Final: s.Final,
				Elapsed: s.Elapsed, Tasks: s.Tasks, Jobs: s.ActiveJobs,
				BackfillTasks: s.BackfillTasks,
				Utilization:   s.Utilization, OverheadShare: s.OverheadShare,
			})
		}
		cfg.ObservePeriod = c.observePeriod
	}
	return cfg
}

// simConfig builds the virtual-machine configuration, resolving the
// model, the processor count, and the observer adapter.
func (c *runnerConfig) simConfig() sim.Config {
	cfg := c.simCfg
	cfg.Mgmt = c.model()
	if cfg.Procs <= 0 && c.workersSet {
		cfg.Procs = c.workers
	}
	// Knob options override the corresponding SimConfig fields when set,
	// matching the observer options' precedence: an explicit With*
	// option wins over the SimConfig literal. Procs (above) is the one
	// documented exception — an explicit SimConfig.Procs wins over
	// WithWorkers, per the WithWorkers contract.
	if c.batch > 0 {
		cfg.Batch = c.batch
	}
	if c.readyCap > 0 {
		cfg.ReadyCap = c.readyCap
	}
	if c.lowWater > 0 {
		cfg.LowWater = c.lowWater
	}
	if c.observer != nil {
		fn := c.observer
		cfg.Observer = func(s sim.Snapshot) {
			fn(Snapshot{
				Backend: VirtualBackend, Final: s.Final,
				VirtualTime: s.VirtualTime, Tasks: s.Tasks, Jobs: s.Jobs,
				Utilization: s.Utilization, OverheadShare: s.OverheadShare,
				Batch: s.Batch,
			})
		}
	}
	if c.observeEvery > 0 {
		cfg.ObserveEvery = c.observeEvery
	}
	if c.faults != nil {
		cfg.Faults = c.faults
	}
	if c.preemptBound > 0 {
		cfg.PreemptBound = c.preemptBound
	}
	return cfg
}

// jobDeadline, jobRetry and jobBackoff resolve a job's failure policy:
// the Job field when set, the Runner default otherwise.
func (c *runnerConfig) jobDeadline(job Job) time.Duration {
	if job.Deadline > 0 {
		return job.Deadline
	}
	return c.deadline
}

func (c *runnerConfig) jobRetry(job Job) int {
	if job.Retry > 0 {
		return job.Retry
	}
	return c.retry
}

func (c *runnerConfig) jobBackoff(job Job) time.Duration {
	if job.Backoff > 0 {
		return job.Backoff
	}
	return c.backoff
}
